"""Unit tests for efficiency, latency digests, and report formatting."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.metrics.efficiency import (
    efficiency,
    efficiency_from_bound,
    run_lower_bound_ps,
)
from repro.metrics.latencies import summarize_latencies
from repro.metrics.report import format_csv, format_series, format_table
from repro.networks.ideal import IdealNetwork
from repro.params import PAPER_PARAMS
from repro.sim.rng import RngStreams
from repro.traffic.base import TrafficPhase, assign_seq
from repro.traffic.scatter import ScatterPattern
from repro.types import Message


@pytest.fixture
def params():
    return PAPER_PARAMS.with_overrides(n_ports=8)


class TestEfficiency:
    def test_ideal_network_is_efficiency_one(self, params):
        phases = ScatterPattern(8, 64).phases(RngStreams(0))
        result = IdealNetwork(params).run(phases)
        assert efficiency(result, phases) == pytest.approx(1.0)

    def test_bound_adds_over_phases(self, params):
        a = TrafficPhase("a", [Message(src=0, dst=1, size=100)])
        b = TrafficPhase("b", [Message(src=1, dst=2, size=100)])
        assign_seq([a, b])
        assert run_lower_bound_ps([a, b], params) == 2 * 100 * 1250

    def test_from_bound_validation(self):
        with pytest.raises(ConfigurationError):
            efficiency_from_bound(100, 0)
        with pytest.raises(ConfigurationError):
            efficiency_from_bound(0, 100)

    def test_no_phases_rejected(self, params):
        with pytest.raises(ConfigurationError):
            run_lower_bound_ps([], params)

    def test_real_networks_below_one(self, params):
        from repro.networks.wormhole import WormholeNetwork

        phases = ScatterPattern(8, 128).phases(RngStreams(0))
        result = WormholeNetwork(params).run(phases)
        eff = efficiency(result, phases)
        assert 0.0 < eff < 1.0


class TestLatencySummary:
    def test_digest(self, params):
        phases = ScatterPattern(8, 64).phases(RngStreams(0))
        result = IdealNetwork(params).run(phases)
        summary = summarize_latencies(result)
        assert summary.count == 7
        assert summary.mean_ns > 0
        # quantiles report bin upper edges, so allow one bin of slack
        assert summary.p50_ns <= summary.p99_ns <= summary.max_ns + 50.0

    def test_empty(self, params):
        phases = ScatterPattern(8, 64).phases(RngStreams(0))
        result = IdealNetwork(params).run(phases)
        result.records.clear()
        summary = summarize_latencies(result)
        assert summary.count == 0 and summary.mean_ns == 0.0

    def test_str(self, params):
        phases = ScatterPattern(8, 64).phases(RngStreams(0))
        summary = summarize_latencies(IdealNetwork(params).run(phases))
        assert "p99" in str(summary)

    def test_empty_run_every_field_finite(self, params):
        """Regression: an empty record list must yield an all-zero digest,
        never a -inf maximum or a NaN quantile leaking out of the
        accumulators, and the digest must still format."""
        import math

        phases = ScatterPattern(8, 64).phases(RngStreams(0))
        result = IdealNetwork(params).run(phases)
        result.records.clear()
        summary = summarize_latencies(result)
        for value in (
            summary.mean_ns,
            summary.p50_ns,
            summary.p99_ns,
            summary.max_ns,
            summary.mean_service_ns,
        ):
            assert math.isfinite(value)
            assert value == 0.0
        assert "n=0" in str(summary)


class TestReportFormatting:
    def test_table_alignment(self):
        text = format_table(["a", "long header"], [[1, 2.5], [333, 4]])
        lines = text.strip().split("\n")
        assert len(lines) == 4
        assert "long header" in lines[0]
        assert "2.500" in text

    def test_table_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table\n")

    def test_series(self):
        text = format_series(
            "bytes", [8, 16], {"worm": [0.1, 0.2], "tdm": [0.3, 0.4]}
        )
        assert "bytes" in text and "worm" in text and "0.4" in text

    def test_csv(self):
        text = format_csv("x", [1, 2], {"s": [0.5, 0.25]})
        lines = text.strip().split("\n")
        assert lines[0] == "x,s"
        assert lines[1] == "1,0.500000"

    def test_series_rounding(self):
        text = format_series("x", [1], {"s": [0.123456]}, precision=2)
        assert "0.12" in text

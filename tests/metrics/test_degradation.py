"""Unit tests for the fault-campaign degradation digest."""

from __future__ import annotations

import pytest

from repro.metrics.degradation import degradation_report
from repro.networks.base import RunResult
from repro.params import PAPER_PARAMS
from repro.types import DropRecord, MessageRecord


def _record(seq: int, size: int = 100, done_ps: int = 1000) -> MessageRecord:
    return MessageRecord(
        src=0, dst=1, size=size, inject_ps=0, start_ps=0, done_ps=done_ps, seq=seq
    )


def _drop(seq: int, size: int = 100) -> DropRecord:
    return DropRecord(
        src=0, dst=1, size=size, sent_bytes=0, seq=seq,
        time_ps=500, reason="dead-link",
    )


def _result(records, drops, recovery_ps=(), counters=None, makespan_ps=10_000):
    return RunResult(
        scheme="test",
        pattern="unit",
        params=PAPER_PARAMS.with_overrides(n_ports=4),
        makespan_ps=makespan_ps,
        total_bytes=sum(r.size for r in records) + sum(d.size for d in drops),
        records=records,
        phases=[],
        counters=counters or {},
        drops=drops,
        recovery_ps=list(recovery_ps),
    )


class TestDegradationReport:
    def test_healthy_run(self):
        result = _result([_record(0), _record(1)], [])
        report = degradation_report(result)
        assert report.delivered == 2 and report.dropped == 0
        assert report.delivered_fraction == 1.0
        assert report.duplicated == 0
        assert report.recoveries == 0 and report.recovery_p99_ns == 0.0
        assert report.effective_bw_bytes_per_ns == pytest.approx(200 * 1000 / 10_000)

    def test_drops_lower_delivered_fraction(self):
        result = _result([_record(0)], [_drop(1), _drop(2), _drop(3)])
        report = degradation_report(result)
        assert report.delivered_fraction == pytest.approx(0.25)
        # effective bandwidth counts only delivered payload
        assert report.effective_bw_bytes_per_ns == pytest.approx(100 * 1000 / 10_000)

    def test_duplicates_detected_across_records_and_drops(self):
        dup_delivery = _result([_record(0), _record(0)], [])
        assert degradation_report(dup_delivery).duplicated == 1
        dup_mixed = _result([_record(0)], [_drop(0)])
        assert degradation_report(dup_mixed).duplicated == 1

    def test_recovery_distribution_in_ns(self):
        result = _result(
            [_record(0)], [], recovery_ps=[1_000_000, 2_000_000, 3_000_000]
        )
        report = degradation_report(result)
        assert report.recoveries == 3
        assert report.recovery_mean_ns == pytest.approx(2000.0, rel=0.05)
        assert report.recovery_max_ns == pytest.approx(3000.0, rel=0.05)

    def test_faults_applied_from_counters(self):
        result = _result(
            [_record(0)], [],
            counters={
                "fault_applied_link_fail": 2,
                "fault_applied_req_drop": 1,
                "fault_skipped_sl_dead": 5,
                "events": 1234,
            },
        )
        assert degradation_report(result).faults_applied == 3

    def test_str_is_informative(self):
        text = str(degradation_report(_result([_record(0)], [_drop(1)])))
        assert "delivered 0.500" in text

"""Unit tests for named RNG streams."""

from __future__ import annotations

import numpy as np

from repro.sim.rng import RngStreams, stream


class TestStream:
    def test_deterministic(self):
        a = stream(42, "traffic").random(8)
        b = stream(42, "traffic").random(8)
        assert np.array_equal(a, b)

    def test_names_independent(self):
        a = stream(42, "traffic").random(8)
        b = stream(42, "priority").random(8)
        assert not np.array_equal(a, b)

    def test_seeds_independent(self):
        a = stream(1, "traffic").random(8)
        b = stream(2, "traffic").random(8)
        assert not np.array_equal(a, b)


class TestRngStreams:
    def test_get_caches(self):
        streams = RngStreams(7)
        assert streams.get("x") is streams.get("x")

    def test_get_distinct_names(self):
        streams = RngStreams(7)
        assert streams.get("x") is not streams.get("y")

    def test_fresh_rewinds(self):
        streams = RngStreams(7)
        first = streams.fresh("x").random(4)
        second = streams.fresh("x").random(4)
        assert np.array_equal(first, second)

    def test_get_consumes_state(self):
        streams = RngStreams(7)
        first = streams.get("x").random(4)
        second = streams.get("x").random(4)
        assert not np.array_equal(first, second)

    def test_two_factories_same_seed_agree(self):
        a = RngStreams(99).get("t").random(16)
        b = RngStreams(99).get("t").random(16)
        assert np.array_equal(a, b)

"""Unit tests for time units and conversions."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import (
    PS_PER_NS,
    byte_time_ps,
    bytes_to_ps,
    ns,
    ps_to_bytes,
    ps_to_ns,
    us,
)


class TestNs:
    def test_integer_ns(self):
        assert ns(10) == 10_000

    def test_zero(self):
        assert ns(0) == 0

    def test_fractional_exact(self):
        assert ns(0.5) == 500

    def test_fractional_inexact_rejected(self):
        with pytest.raises(ConfigurationError):
            ns(0.0001234567)

    def test_us(self):
        assert us(1) == 1_000_000

    def test_roundtrip(self):
        assert ps_to_ns(ns(123)) == 123.0

    def test_large_half_integer_is_exact(self):
        # regression: the old absolute-1e-9 tolerance check silently
        # mis-rounded large floats — ns(2**51 + 0.5) returned a value off
        # by 12 ps (the float product rounds to a multiple of 512)
        assert ns(2**51 + 0.5) == 2**51 * 1_000 + 500

    def test_large_integer_float_is_exact(self):
        assert ns(float(2**52)) == 2**52 * 1_000

    def test_inexact_near_integer_rejected(self):
        with pytest.raises(ConfigurationError):
            ns(1.0000000000000002)

    def test_nan_and_inf_rejected(self):
        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(ConfigurationError):
                ns(bad)

    def test_us_does_not_compound_float_multiply(self):
        # regression: us() used to go through ns(value * 1_000), stacking
        # two float multiplies; the scale must be applied exactly once
        assert us(2**51 + 0.5) == (2**51) * 1_000_000 + 500_000
        assert us(0.5) == 500_000

    def test_us_inexact_rejected(self):
        with pytest.raises(ConfigurationError):
            us(0.0000001234567)


class TestByteTime:
    def test_paper_rate_is_1250ps(self):
        assert byte_time_ps(6.4) == 1250

    def test_8gbps(self):
        assert byte_time_ps(8.0) == 1000

    def test_1gbps(self):
        assert byte_time_ps(1.0) == 8000

    def test_non_integer_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            byte_time_ps(7.3)  # 8000/7.3 is not an integer ps

    def test_zero_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            byte_time_ps(0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            byte_time_ps(-6.4)


class TestBytesConversions:
    def test_bytes_to_ps(self):
        assert bytes_to_ps(80, 1250) == 100_000  # one slot

    def test_bytes_to_ps_zero(self):
        assert bytes_to_ps(0, 1250) == 0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            bytes_to_ps(-1, 1250)

    def test_ps_to_bytes_floor(self):
        assert ps_to_bytes(99_999, 1250) == 79

    def test_ps_to_bytes_exact(self):
        assert ps_to_bytes(100_000, 1250) == 80

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            ps_to_bytes(-1, 1250)

    def test_ps_per_ns_constant(self):
        assert PS_PER_NS == 1000

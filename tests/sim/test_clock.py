"""Unit tests for time units and conversions."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import (
    PS_PER_NS,
    byte_time_ps,
    bytes_to_ps,
    ns,
    ps_to_bytes,
    ps_to_ns,
    us,
)


class TestNs:
    def test_integer_ns(self):
        assert ns(10) == 10_000

    def test_zero(self):
        assert ns(0) == 0

    def test_fractional_exact(self):
        assert ns(0.5) == 500

    def test_fractional_inexact_rejected(self):
        with pytest.raises(ConfigurationError):
            ns(0.0001234567)

    def test_us(self):
        assert us(1) == 1_000_000

    def test_roundtrip(self):
        assert ps_to_ns(ns(123)) == 123.0


class TestByteTime:
    def test_paper_rate_is_1250ps(self):
        assert byte_time_ps(6.4) == 1250

    def test_8gbps(self):
        assert byte_time_ps(8.0) == 1000

    def test_1gbps(self):
        assert byte_time_ps(1.0) == 8000

    def test_non_integer_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            byte_time_ps(7.3)  # 8000/7.3 is not an integer ps

    def test_zero_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            byte_time_ps(0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            byte_time_ps(-6.4)


class TestBytesConversions:
    def test_bytes_to_ps(self):
        assert bytes_to_ps(80, 1250) == 100_000  # one slot

    def test_bytes_to_ps_zero(self):
        assert bytes_to_ps(0, 1250) == 0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            bytes_to_ps(-1, 1250)

    def test_ps_to_bytes_floor(self):
        assert ps_to_bytes(99_999, 1250) == 79

    def test_ps_to_bytes_exact(self):
        assert ps_to_bytes(100_000, 1250) == 80

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            ps_to_bytes(-1, 1250)

    def test_ps_per_ns_constant(self):
        assert PS_PER_NS == 1000

"""Property tests for the event kernel's ordering guarantees."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Event, Priority, Simulator


@st.composite
def event_specs(draw):
    return draw(
        st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 90)),
            min_size=1,
            max_size=60,
        )
    )


@settings(max_examples=150, deadline=None)
@given(event_specs())
def test_execution_respects_total_order(specs):
    """Events run sorted by (time, priority, insertion sequence)."""
    sim = Simulator()
    log: list[tuple[int, int, int]] = []
    for seq, (t, prio) in enumerate(specs):
        sim.schedule(
            t,
            (lambda t=t, prio=prio, seq=seq: log.append((t, prio, seq))),
            priority=prio,
        )
    sim.run()
    assert log == sorted(log)
    assert len(log) == len(specs)


@settings(max_examples=100, deadline=None)
@given(event_specs(), st.integers(0, 1000))
def test_until_horizon_partitions_execution(specs, horizon):
    """run(until=h) runs exactly the events at t <= h, then the rest."""
    sim = Simulator()
    ran: list[int] = []
    for t, prio in specs:
        sim.schedule(t, (lambda t=t: ran.append(t)), priority=prio)
    sim.run(until=horizon)
    assert all(t <= horizon for t in ran)
    early = len(ran)
    assert early == sum(1 for t, _ in specs if t <= horizon)
    sim.run()
    assert len(ran) == len(specs)


@settings(max_examples=100, deadline=None)
@given(event_specs(), st.data())
def test_cancellation_removes_exactly_the_cancelled(specs, data):
    sim = Simulator()
    ran: list[int] = []
    events: list[Event] = []
    for i, (t, prio) in enumerate(specs):
        events.append(
            sim.schedule(t, (lambda i=i: ran.append(i)), priority=prio)
        )
    to_cancel = data.draw(
        st.sets(st.integers(0, len(specs) - 1), max_size=len(specs))
    )
    for i in to_cancel:
        events[i].cancel()
    sim.run()
    assert set(ran) == set(range(len(specs))) - to_cancel


def test_heap_entry_ordering():
    # heap entries are plain (time, priority, seq, event) tuples; the unique
    # seq means the comparison never falls through to the Event object, so
    # Event deliberately defines no ordering of its own
    def entry(time, priority, seq):
        return (time, priority, seq, Event(time, priority, seq, lambda: None, ()))

    a = entry(10, 0, 0)
    b = entry(10, 0, 1)
    c = entry(10, 1, 2)
    d = entry(9, 99, 3)
    assert a < b < c
    assert d < a
    assert not hasattr(Event, "__lt__") or Event.__lt__ is object.__lt__


def test_priority_constants_are_ordered():
    assert (
        Priority.FABRIC
        < Priority.WIRE
        < Priority.SCHEDULER
        < Priority.TRANSFER
        < Priority.NIC
        < Priority.MONITOR
    )

"""Unit tests for the online statistics accumulators."""

from __future__ import annotations


import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.stats import Counter, Histogram, OnlineStats


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.count == 0
        assert s.variance == 0.0

    def test_single_value(self):
        s = OnlineStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.minimum == 5.0
        assert s.maximum == 5.0
        assert s.stddev == 0.0

    def test_known_sequence(self):
        s = OnlineStats()
        for x in [2, 4, 4, 4, 5, 5, 7, 9]:
            s.add(x)
        assert s.mean == pytest.approx(5.0)
        assert s.stddev == pytest.approx(2.0)
        assert s.total == 40

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_matches_numpy(self, xs):
        s = OnlineStats()
        for x in xs:
            s.add(x)
        assert s.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(np.var(xs), rel=1e-6, abs=1e-3)
        assert s.minimum == min(xs)
        assert s.maximum == max(xs)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
    )
    def test_merge_equals_sequential(self, xs, ys):
        merged = OnlineStats()
        for x in xs:
            merged.add(x)
        other = OnlineStats()
        for y in ys:
            other.add(y)
        merged.merge(other)
        combined = OnlineStats()
        for v in xs + ys:
            combined.add(v)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(combined.variance, rel=1e-6, abs=1e-3)

    def test_merge_into_empty(self):
        a = OnlineStats()
        b = OnlineStats()
        b.add(3.0)
        a.merge(b)
        assert a.count == 1 and a.mean == 3.0

    def test_merge_empty_is_noop(self):
        a = OnlineStats()
        a.add(1.0)
        a.merge(OnlineStats())
        assert a.count == 1


class TestHistogram:
    def test_bins(self):
        h = Histogram(bin_width=10.0, n_bins=4)
        for x in [0, 5, 15, 35]:
            h.add(x)
        assert h.counts == [2, 1, 0, 1]
        assert h.overflow == 0

    def test_overflow(self):
        h = Histogram(bin_width=10.0, n_bins=2)
        h.add(25.0)
        assert h.overflow == 1
        assert h.count == 1

    def test_negative_rejected(self):
        h = Histogram(bin_width=1.0, n_bins=2)
        with pytest.raises(ConfigurationError):
            h.add(-1.0)

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram(bin_width=0, n_bins=4)
        with pytest.raises(ConfigurationError):
            Histogram(bin_width=1.0, n_bins=0)

    def test_quantile_empty(self):
        assert Histogram(bin_width=1.0, n_bins=4).quantile(0.5) == 0.0

    def test_quantile_median(self):
        h = Histogram(bin_width=1.0, n_bins=100)
        for x in range(100):
            h.add(x + 0.5)
        assert h.quantile(0.5) == pytest.approx(50.0, abs=1.5)

    def test_quantile_out_of_range(self):
        h = Histogram(bin_width=1.0, n_bins=4)
        with pytest.raises(ConfigurationError):
            h.quantile(1.5)

    def test_quantile_zero_returns_observed_minimum(self):
        # regression: with target 0, `seen >= target` was vacuously true in
        # the very first bin, so q=0 reported bin_width even when samples
        # lay far above it
        h = Histogram(bin_width=1.0, n_bins=100)
        h.add(42.5)
        h.add(90.0)
        assert h.quantile(0.0) == 42.5

    def test_quantile_zero_empty_histogram(self):
        assert Histogram(bin_width=1.0, n_bins=4).quantile(0.0) == 0.0

    def test_mean_tracked_exactly(self):
        h = Histogram(bin_width=100.0, n_bins=4)
        h.add(3.0)
        h.add(5.0)
        assert h.mean == pytest.approx(4.0)

    def test_boundary_sample_lands_in_upper_bin(self):
        # regression: float binning put 0.3 in bin 2 (0.3 // 0.1 == 2.0);
        # a sample on a bin edge belongs to the bin it opens
        h = Histogram(bin_width=0.1, n_bins=4)
        h.add(0.3)
        assert h.counts == [0, 0, 0, 1]

    def test_integer_boundary_sample_exact(self):
        h = Histogram(bin_width=100_000.0, n_bins=4)
        h.add(300_000)  # integer ps sample on the bin edge
        assert h.counts == [0, 0, 0, 1]

    @given(st.integers(0, 10**12), st.integers(1, 10**6))
    def test_integer_binning_matches_integer_division(self, x, w):
        h = Histogram(bin_width=float(w), n_bins=8)
        h.add(x)
        idx = x // w
        if idx >= 8:
            assert h.overflow == 1
        else:
            assert h.counts[idx] == 1

    def test_quantile_boundary_rank_not_skipped_into_overflow(self):
        # regression: the float target (0.7 * 10 == 7.0000000000000004)
        # overshot the exact rank, so a quantile that lands exactly on the
        # last binned sample silently reported the overflow maximum
        h = Histogram(bin_width=1.0, n_bins=10)
        for x in range(7):
            h.add(x + 0.5)  # bins 0..6
        for _ in range(3):
            h.add(1_000.0)  # overflow
        assert h.quantile(0.7) == 7.0  # upper edge of bin 6, not 1000.0

    def test_quantile_in_overflow_reports_observed_maximum(self):
        h = Histogram(bin_width=1.0, n_bins=4)
        h.add(0.5)
        h.add(99.0)
        h.add(100.0)
        assert h.quantile(1.0) == 100.0
        assert h.quantile(0.9) == 100.0


class TestCounter:
    def test_inc_and_get(self):
        c = Counter()
        c.inc("a")
        c.inc("a", 2)
        assert c["a"] == 3

    def test_missing_is_zero(self):
        assert Counter()["nope"] == 0

    def test_as_dict_copies(self):
        c = Counter()
        c.inc("a")
        d = c.as_dict()
        d["a"] = 99
        assert c["a"] == 1

"""Unit tests for the trace recorder."""

from __future__ import annotations

from repro.sim.trace import NULL_TRACER, Tracer


class TestTracer:
    def test_record_and_read(self):
        t = Tracer()
        t.record(100, "send", src=1, dst=2)
        events = list(t.events())
        assert len(events) == 1
        assert events[0].kind == "send"
        assert events[0].payload == {"src": 1, "dst": 2}

    def test_filter_by_kind(self):
        t = Tracer()
        t.record(1, "a")
        t.record(2, "b")
        t.record(3, "a")
        assert len(list(t.events("a"))) == 2

    def test_ring_buffer_drops_oldest(self):
        t = Tracer(capacity=2)
        t.record(1, "x")
        t.record(2, "y")
        t.record(3, "z")
        kinds = [e.kind for e in t.events()]
        assert kinds == ["y", "z"]
        assert t.dropped == 1

    def test_disabled_records_nothing(self):
        t = Tracer(enabled=False)
        t.record(1, "x")
        assert len(t) == 0

    def test_null_tracer_is_inert(self):
        NULL_TRACER.record(1, "x")
        assert len(NULL_TRACER) == 0

    def test_clear(self):
        t = Tracer()
        t.record(1, "x")
        t.clear()
        assert len(t) == 0

    def test_str_rendering(self):
        t = Tracer()
        t.record(1500, "send", dst=3)
        text = str(next(t.events()))
        assert "1.5 ns" in text and "send" in text and "dst=3" in text

"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Priority, Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, order.append, "c")
        sim.schedule(10, order.append, "a")
        sim.schedule(20, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(5, lambda: times.append(sim.now))
        sim.schedule(15, lambda: times.append(sim.now))
        sim.run()
        assert times == [5, 15]

    def test_priority_breaks_ties(self):
        sim = Simulator()
        order = []
        sim.schedule(10, order.append, "default", priority=Priority.DEFAULT)
        sim.schedule(10, order.append, "fabric", priority=Priority.FABRIC)
        sim.schedule(10, order.append, "wire", priority=Priority.WIRE)
        sim.run()
        assert order == ["fabric", "wire", "default"]

    def test_insertion_order_breaks_remaining_ties(self):
        sim = Simulator()
        order = []
        sim.schedule(10, order.append, 1)
        sim.schedule(10, order.append, 2)
        sim.run()
        assert order == [1, 2]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        hits = []

        def outer():
            hits.append(("outer", sim.now))
            sim.schedule(7, inner)

        def inner():
            hits.append(("inner", sim.now))

        sim.schedule(3, outer)
        sim.run()
        assert hits == [("outer", 3), ("inner", 10)]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        hits = []
        ev = sim.schedule(10, hits.append, "x")
        ev.cancel()
        sim.run()
        assert hits == []

    def test_cancel_twice_is_safe(self):
        sim = Simulator()
        ev = sim.schedule(10, lambda: None)
        ev.cancel()
        ev.cancel()
        sim.run()

    def test_cancel_one_of_many(self):
        sim = Simulator()
        hits = []
        sim.schedule(10, hits.append, "keep")
        ev = sim.schedule(10, hits.append, "drop")
        ev.cancel()
        sim.run()
        assert hits == ["keep"]


class TestRunControls:
    def test_stop_ends_loop(self):
        sim = Simulator()
        hits = []
        sim.schedule(10, lambda: (hits.append(1), sim.stop()))
        sim.schedule(20, hits.append, 2)
        sim.run()
        assert hits == [1]

    def test_resume_after_stop(self):
        sim = Simulator()
        hits = []
        sim.schedule(10, lambda: (hits.append("a"), sim.stop()))
        sim.schedule(20, hits.append, "b")
        sim.run()
        assert len(hits) == 1
        sim.run()
        assert hits[-1] == "b"

    def test_until_horizon(self):
        sim = Simulator()
        hits = []
        sim.schedule(10, hits.append, "early")
        sim.schedule(100, hits.append, "late")
        sim.run(until=50)
        assert hits == ["early"]
        assert sim.now == 50
        sim.run()
        assert hits == ["early", "late"]

    def test_max_events_raises(self):
        sim = Simulator()

        def loop():
            sim.schedule(1, loop)

        sim.schedule(1, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_executed == 5

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(5, lambda: None)
        sim.schedule(9, lambda: None)
        ev.cancel()
        assert sim.peek_time() == 9

    def test_peek_time_empty(self):
        assert Simulator().peek_time() is None

    def test_run_until_idle(self):
        sim = Simulator()
        state = {"work": 3}

        def worker():
            state["work"] -= 1
            if state["work"]:
                sim.schedule(10, worker)

        sim.schedule(0, worker)
        sim.run_until_idle(lambda: state["work"] == 0, poll_ps=5)
        assert state["work"] == 0

    def test_run_until_idle_forwards_max_events(self):
        # regression: the safety valves used to be silently ignored
        sim = Simulator()

        def loop():
            sim.schedule(1, loop)

        sim.schedule(1, loop)
        with pytest.raises(SimulationError):
            sim.run_until_idle(lambda: False, poll_ps=5, max_events=100)

    def test_run_until_idle_forwards_until(self):
        sim = Simulator()
        hits = []
        sim.schedule(10, hits.append, "early")
        sim.schedule(100, hits.append, "late")
        sim.run_until_idle(lambda: False, poll_ps=7, until=50)
        assert hits == ["early"]
        assert sim.now == 50

    def test_run_until_idle_forwards_max_wall_s(self):
        sim = Simulator()

        def loop():
            sim.schedule(1, loop)

        sim.schedule(1, loop)
        with pytest.raises(SimulationError, match="watchdog"):
            sim.run_until_idle(lambda: False, poll_ps=5, max_wall_s=0.0)

    def test_run_until_idle_until_exit_cancels_probe(self):
        # regression: exiting via `until` left the self-rescheduling
        # MONITOR probe queued, where it re-armed in every later run()
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run_until_idle(lambda: False, poll_ps=7, until=50)
        assert sim.pending == 1  # only the 100 ps event; no leaked probe
        sim.run()  # would never terminate with a live probe chain
        assert sim.pending == 0

    def test_run_until_idle_max_events_exit_cancels_probe(self):
        sim = Simulator()
        polls = []

        def loop():
            sim.schedule(1, loop)

        def idle_check() -> bool:
            polls.append(sim.now)
            return False

        sim.schedule(1, loop)
        with pytest.raises(SimulationError):
            sim.run_until_idle(idle_check, poll_ps=5, max_events=64)
        before = len(polls)
        # the cancelled probe must not poll again in later plain runs
        with pytest.raises(SimulationError):
            sim.run(max_events=32)
        assert len(polls) == before

    def test_run_until_idle_stop_exit_cancels_probe(self):
        sim = Simulator()
        sim.schedule(3, sim.stop)
        sim.schedule(100, lambda: None)
        sim.run_until_idle(lambda: False, poll_ps=50, until=None)
        assert sim.pending == 1  # the 100 ps event only

    def test_run_until_idle_idle_exit_leaves_no_probe(self):
        sim = Simulator()
        state = {"work": 2}

        def worker():
            state["work"] -= 1
            if state["work"]:
                sim.schedule(10, worker)

        sim.schedule(0, worker)
        sim.run_until_idle(lambda: state["work"] == 0, poll_ps=5)
        assert sim.pending == 0


class TestHeapCompaction:
    def test_pending_counts_live_events_only(self):
        sim = Simulator()
        events = [sim.schedule(10 + i, lambda: None) for i in range(10)]
        for ev in events[:4]:
            ev.cancel()
        assert sim.pending == 6

    def test_cancel_heavy_heap_is_compacted(self):
        sim = Simulator()
        events = [sim.schedule(10 + i, lambda: None) for i in range(1000)]
        for ev in events[:800]:
            ev.cancel()
        # more than half the heap was cancelled debris: it must have shrunk
        assert len(sim._heap) <= 400
        assert sim.pending == 200
        sim.run()
        assert sim.events_executed == 200

    def test_compaction_preserves_order(self):
        sim = Simulator()
        hits = []
        keep = []
        for i in range(200):
            ev = sim.schedule(1000 - i, hits.append, 1000 - i)
            if i % 2:
                keep.append(ev)
            else:
                ev.cancel()
        sim.run()
        assert hits == sorted(hits)
        assert len(hits) == 100

    def test_executed_events_do_not_count_as_cancelled(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_cancelled == 0
        assert sim.pending == 0


class TestPerfCounters:
    def test_counters_after_run(self):
        sim = Simulator()
        for i in range(8):
            sim.schedule(i, lambda: None)
        ev = sim.schedule(100, lambda: None)
        ev.cancel()
        sim.run()
        perf = sim.perf_counters()
        assert perf["events_executed"] == 8
        assert perf["events_scheduled"] == 9
        assert perf["events_cancelled"] == 1
        assert perf["heap_high_water"] == 9
        assert perf["pending"] == 0
        assert perf["run_wall_s"] >= 0.0
        assert 0.0 < perf["cancelled_ratio"] < 1.0

    def test_events_per_sec_positive_after_work(self):
        sim = Simulator()
        state = {"n": 0}

        def tick():
            state["n"] += 1
            if state["n"] < 1000:
                sim.schedule(1, tick)

        sim.schedule(0, tick)
        sim.run()
        assert sim.perf_counters()["events_per_sec"] > 0

"""Byte-identity and fallback tests for the slot-synchronous fast path.

The contract under test: with ``fast=True`` a run either (a) produces a
``RunResult`` byte-identical to the event-driven path — makespan, every
message record, phase accounting, counters (including the executed-event
count), drops — or (b) falls back to the event path entirely when the run
is irregular (faults, tracing, exotic schedulers).
"""

from __future__ import annotations

from repro.sim.clock import ns, us
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.fabric.fattree import FatTree
from repro.networks.tdm import TdmNetwork
from repro.params import PAPER_PARAMS
from repro.predict import TimeoutPredictor
from repro.sched.priority import RoundRobinPriority
from repro.sim.fastpath import FAST_ENV_VAR, fast_from_env, fastpath_ineligible
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer
from repro.traffic.mesh import OrderedMeshPattern
from repro.traffic.scatter import ScatterPattern
from repro.traffic.synthetic import UniformRandomPattern

P8 = PAPER_PARAMS.with_overrides(n_ports=8)
P16 = PAPER_PARAMS.with_overrides(n_ports=16)


def fingerprint(result):
    """Every observable of a run, as one comparable value."""
    return {
        "makespan": result.makespan_ps,
        "total_bytes": result.total_bytes,
        "records": [
            (r.src, r.dst, r.size, r.inject_ps, r.start_ps, r.done_ps, r.seq)
            for r in result.records
        ],
        "phases": [
            (p.name, p.start_ps, p.end_ps, p.bytes, p.messages)
            for p in result.phases
        ],
        "counters": result.counters,
        "drops": [(d.src, d.dst, d.seq) for d in result.drops],
        "recovery_ps": result.recovery_ps,
    }


def run_both(make_net, pattern, seed=3):
    """Run ``pattern`` through an event-mode and a fast-mode twin."""
    slow = make_net(False)
    fast = make_net(True)
    result_slow = slow.run(pattern.phases(RngStreams(seed)), pattern_name=pattern.name)
    result_fast = fast.run(pattern.phases(RngStreams(seed)), pattern_name=pattern.name)
    return result_slow, result_fast, fast


class TestByteIdentity:
    def test_scatter_long_messages_windows_open(self):
        """The flagship case: long streams, quiescent windows do the work."""
        pattern = ScatterPattern(8, size_bytes=2048)
        rs, rf, fast = run_both(
            lambda f: TdmNetwork(P8, k=4, injection_window=4, fast=f), pattern
        )
        assert fingerprint(rs) == fingerprint(rf)
        assert fast._fastpath is not None
        stats = fast._fastpath.stats()
        assert stats["windows_opened"] > 0
        assert stats["quiet_slot_ticks"] > 0

    def test_scatter_short_messages_no_windows(self):
        """Messages shorter than the window minimum: still identical."""
        pattern = ScatterPattern(8, size_bytes=64)
        rs, rf, _ = run_both(
            lambda f: TdmNetwork(P8, k=4, injection_window=4, fast=f), pattern
        )
        assert fingerprint(rs) == fingerprint(rf)

    def test_uniform_random(self):
        pattern = UniformRandomPattern(16, size_bytes=512, messages_per_node=6)
        rs, rf, _ = run_both(
            lambda f: TdmNetwork(P16, k=4, injection_window=4, fast=f), pattern
        )
        assert fingerprint(rs) == fingerprint(rf)

    def test_preload_mesh(self):
        """Preloaded slots plus batch draining (the batch break rule)."""
        pattern = OrderedMeshPattern(8, size_bytes=1024)
        rs, rf, _ = run_both(
            lambda f: TdmNetwork(P8, k=4, mode="preload", injection_window=4, fast=f),
            pattern,
        )
        assert fingerprint(rs) == fingerprint(rf)

    def test_hybrid_mesh(self):
        pattern = OrderedMeshPattern(8, size_bytes=1024)
        rs, rf, _ = run_both(
            lambda f: TdmNetwork(
                P8, k=4, mode="hybrid", k_preload=2, injection_window=4, fast=f
            ),
            pattern,
        )
        assert fingerprint(rs) == fingerprint(rf)

    def test_no_injection_window(self):
        pattern = ScatterPattern(8, size_bytes=768)
        rs, rf, _ = run_both(lambda f: TdmNetwork(P8, k=4, fast=f), pattern)
        assert fingerprint(rs) == fingerprint(rf)

    def test_round_robin_rotation(self):
        """Bulk SL passes must advance the rotation exactly like the loop."""
        pattern = ScatterPattern(8, size_bytes=2048)
        rs, rf, _ = run_both(
            lambda f: TdmNetwork(
                P8, k=4, rotation=RoundRobinPriority(8), injection_window=4, fast=f
            ),
            pattern,
        )
        assert fingerprint(rs) == fingerprint(rf)

    def test_predictor_disables_windows_not_identity(self):
        """A real predictor rules out windows but keeps the vector transfer."""
        pattern = UniformRandomPattern(8, size_bytes=512, messages_per_node=4)
        rs, rf, fast = run_both(
            lambda f: TdmNetwork(
                P8, k=4, predictor=TimeoutPredictor(timeout_ps=us(1)), fast=f
            ),
            pattern,
        )
        assert fingerprint(rs) == fingerprint(rf)
        assert fast._fastpath is not None
        assert fast._fastpath.stats()["windows_opened"] == 0

    def test_circuit_scheme_batch_wavefront(self):
        """Circuit switching has no slot clock; fast mode swaps only the
        wavefront evaluator and must stay identical."""
        from repro.networks.circuit import CircuitNetwork

        pattern = UniformRandomPattern(8, size_bytes=512, messages_per_node=4)
        rs, rf, _ = run_both(lambda f: CircuitNetwork(P8, fast=f), pattern)
        assert fingerprint(rs) == fingerprint(rf)

    def test_fault_campaign_falls_back_and_stays_identical(self):
        """With faults active both modes run the event path; fast=True must
        be a no-op rather than an error."""
        schedule = FaultSchedule(
            events=(FaultEvent(time_ps=ns(500), kind=FaultKind.LINK_FAIL, port=2),)
        )
        pattern = UniformRandomPattern(8, size_bytes=512, messages_per_node=4)
        rs, rf, fast = run_both(
            lambda f: TdmNetwork(P8, k=4, faults=FaultInjector(schedule), fast=f),
            pattern,
        )
        assert fast._fastpath is None
        assert fingerprint(rs) == fingerprint(rf)


class TestExperimentCells:
    """The CI contract at experiment granularity: whole sweep cells (which
    resolve ``fast`` from ``REPRO_FAST`` via the scheme registry) must
    produce equal points in both modes."""

    def test_figure4_cell_both_modes(self, monkeypatch):
        from repro.experiments.figure4 import Figure4Cell, run_figure4_cell

        cell = Figure4Cell(
            pattern="scatter",
            scheme="dynamic-tdm",
            size_bytes=1024,
            params=P16,
            k=4,
            mesh_rounds=1,
            nn_rounds=2,
            seed=7,
        )
        monkeypatch.setenv(FAST_ENV_VAR, "0")
        slow = run_figure4_cell(cell)
        monkeypatch.setenv(FAST_ENV_VAR, "1")
        fast = run_figure4_cell(cell)
        assert slow == fast

    def test_figure5_cell_both_modes(self, monkeypatch):
        from repro.experiments.figure5 import Figure5Cell, run_figure5_cell

        cell = Figure5Cell(
            k_preload=2,
            determinism=0.75,
            params=P16,
            k_total=4,
            size_bytes=512,
            messages_per_node=4,
            n_static=2,
            injection_window=4,
            seed=7,
        )
        monkeypatch.setenv(FAST_ENV_VAR, "0")
        slow = run_figure5_cell(cell)
        monkeypatch.setenv(FAST_ENV_VAR, "1")
        fast = run_figure5_cell(cell)
        assert slow == fast

    def test_fault_cell_both_modes(self, monkeypatch):
        from repro.experiments.faults import FaultCell, run_fault_cell

        cell = FaultCell(
            scheme="dynamic-tdm",
            rate_per_us=1.0,
            horizon_ps=10**8,
            params=P16,
            size_bytes=512,
            messages_per_node=4,
            n_static=2,
            k=4,
            injection_window=4,
            seed=7,
            max_wall_s=None,
        )
        monkeypatch.setenv(FAST_ENV_VAR, "0")
        slow = run_fault_cell(cell)
        monkeypatch.setenv(FAST_ENV_VAR, "1")
        fast = run_fault_cell(cell)
        assert slow == fast


class TestEligibility:
    def test_eligible_plain_run(self):
        net = TdmNetwork(P8, k=4, fast=True)
        net.run(ScatterPattern(8, size_bytes=256).phases(RngStreams(1)))
        assert fastpath_ineligible(net) is None
        assert net._fastpath is not None

    def test_tracer_ineligible(self):
        net = TdmNetwork(P8, k=4, tracer=Tracer(enabled=True), fast=True)
        assert fastpath_ineligible(net) is not None
        net.run(ScatterPattern(8, size_bytes=256).phases(RngStreams(1)))
        assert net._fastpath is None

    def test_faults_ineligible(self):
        schedule = FaultSchedule(
            events=(FaultEvent(time_ps=ns(500), kind=FaultKind.LINK_FAIL, port=0),)
        )
        net = TdmNetwork(P8, k=4, faults=FaultInjector(schedule), fast=True)
        assert fastpath_ineligible(net) is not None

    def test_multi_unit_scheduler_ineligible(self):
        net = TdmNetwork(P8, k=4, n_sl_units=2, fast=True)
        net.run(ScatterPattern(8, size_bytes=256).phases(RngStreams(1)))
        assert net._fastpath is None

    def test_constrained_scheduler_ineligible(self):
        net = TdmNetwork(P8, k=4, fabric_constraint=FatTree(8), fast=True)
        net.run(ScatterPattern(8, size_bytes=256).phases(RngStreams(1)))
        assert net._fastpath is None

    def test_fast_from_env(self, monkeypatch):
        monkeypatch.delenv(FAST_ENV_VAR, raising=False)
        assert fast_from_env() is False
        monkeypatch.setenv(FAST_ENV_VAR, "0")
        assert fast_from_env() is False
        monkeypatch.setenv(FAST_ENV_VAR, "1")
        assert fast_from_env() is True

    def test_event_count_credited_exactly(self):
        """Skipped clock ticks are credited: the events counter matches."""
        pattern = ScatterPattern(8, size_bytes=2048)
        rs, rf, fast = run_both(
            lambda f: TdmNetwork(P8, k=4, injection_window=4, fast=f), pattern
        )
        assert rs.counters["events"] == rf.counters["events"]
        stats = fast._fastpath.stats()
        # the credit is real: more ticks were applied than heap events run
        assert stats["quiet_slot_ticks"] + stats["quiet_sl_ticks"] > 0

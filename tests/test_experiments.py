"""Unit tests for the experiment drivers (small system sizes)."""

from __future__ import annotations

import pytest

from repro.experiments.common import figure4_schemes, measure
from repro.experiments.faults import run_faults
from repro.experiments.figure4 import figure4_patterns, run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.table3 import format_table3, run_table3
from repro.params import PAPER_PARAMS
from repro.traffic.scatter import ScatterPattern


@pytest.fixture
def params():
    return PAPER_PARAMS.with_overrides(n_ports=16)


class TestTable3Driver:
    def test_rows(self):
        rows = run_table3()
        assert len(rows) == 6
        assert rows[-1]["n"] == 128

    def test_formatting(self):
        text = format_table3()
        assert "Table 3" in text
        assert "385" in text  # the paper's 128-port value appears

    def test_custom_sizes(self):
        rows = run_table3(sizes=(4, 256))
        assert rows[1]["n"] == 256
        # no paper value for 256: error is NaN
        assert rows[1]["paper_ns"] != rows[1]["paper_ns"]


class TestMeasure:
    def test_point_fields(self, params):
        schemes = figure4_schemes(params)
        point = measure(ScatterPattern(16, 64), schemes["wormhole"]())
        assert point.scheme == "wormhole"
        assert point.pattern == "scatter"
        assert 0 < point.efficiency < 1
        assert point.lower_bound_ps <= point.makespan_ps

    def test_same_seed_same_result(self, params):
        schemes = figure4_schemes(params)
        a = measure(ScatterPattern(16, 64), schemes["dynamic-tdm"](), seed=5)
        b = measure(ScatterPattern(16, 64), schemes["dynamic-tdm"](), seed=5)
        assert a.makespan_ps == b.makespan_ps

    def test_all_schemes_run(self, params):
        for name, factory in figure4_schemes(params).items():
            point = measure(ScatterPattern(16, 64), factory())
            assert point.efficiency > 0, name


class TestFigure4Driver:
    def test_subset_run(self, params):
        result = run_figure4(
            params=params,
            sizes=(32, 64),
            patterns=("scatter",),
            schemes=("wormhole", "dynamic-tdm"),
            mesh_rounds=1,
            nn_rounds=2,
        )
        assert set(result.series) == {"scatter"}
        assert set(result.series["scatter"]) == {"wormhole", "dynamic-tdm"}
        assert len(result.series["scatter"]["wormhole"]) == 2
        assert result.efficiency("scatter", "wormhole", 64) > 0

    def test_patterns_available(self, params):
        factories = figure4_patterns(params)
        assert set(factories) == {"scatter", "random-mesh", "ordered-mesh", "two-phase"}
        for factory in factories.values():
            pattern = factory(64)
            assert pattern.size_bytes == 64

    def test_format_and_csv(self, params):
        result = run_figure4(
            params=params,
            sizes=(64,),
            patterns=("scatter",),
            schemes=("wormhole",),
        )
        assert "Figure 4" in result.format()
        assert "bytes,wormhole" in result.csv("scatter")


class TestFigure5Driver:
    def test_small_sweep(self, params):
        result = run_figure5(
            params=params,
            determinism=(0.5, 1.0),
            k_preloads=(0, 1),
            messages_per_node=8,
        )
        assert set(result.series) == {"0-preload/3-dynamic", "1-preload/2-dynamic"}
        assert len(result.series["0-preload/3-dynamic"]) == 2
        assert result.efficiency(1, 1.0) > 0

    def test_format(self, params):
        result = run_figure5(
            params=params, determinism=(0.9,), k_preloads=(0,), messages_per_node=4
        )
        assert "Figure 5" in result.format()
        assert "determinism" in result.csv()


class TestFaultsDriver:
    def test_small_sweep(self, params):
        result = run_faults(
            params=params,
            rates=(0.0, 4.0),
            schemes=("wormhole", "dynamic-tdm"),
            messages_per_node=2,
        )
        assert set(result.delivered) == {"wormhole", "dynamic-tdm"}
        assert len(result.points) == 4
        for scheme in result.delivered:
            # rate 0 is lossless and at full healthy bandwidth
            assert result.point(scheme, 0.0).report.delivered_fraction == 1.0
            assert result.bandwidth[scheme][0] >= result.bandwidth[scheme][1]
            for point in (result.point(scheme, r) for r in (0.0, 4.0)):
                assert point.report.duplicated == 0

    def test_sweep_deterministic(self, params):
        kwargs = dict(
            params=params, rates=(8.0,), schemes=("circuit",), messages_per_node=2
        )
        a, b = run_faults(**kwargs), run_faults(**kwargs)
        assert a.delivered == b.delivered
        assert a.bandwidth == b.bandwidth
        assert [p.makespan_ps for p in a.points] == [p.makespan_ps for p in b.points]

    def test_format_and_csv(self, params):
        result = run_faults(
            params=params, rates=(0.0,), schemes=("wormhole",), messages_per_node=2
        )
        assert "delivered message fraction" in result.format()
        assert "faults_per_us,wormhole:delivered" in result.csv()
        with pytest.raises(KeyError):
            result.point("wormhole", 99.0)

"""Unit tests for the topology builders (repro.topo.builders)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.topo import fat_tree, full_mesh, line


class TestFullMesh:
    def test_shape(self):
        topo = full_mesh(64, n_switches=16, links_per_pair=4)
        assert topo.n_endpoints == 64
        assert topo.n_switches == 16
        # C(16, 2) pairs x 4 parallel links
        assert topo.n_links == 16 * 15 // 2 * 4
        assert topo.diameter() == 2

    def test_endpoints_striped(self):
        topo = full_mesh(64, n_switches=16, links_per_pair=4)
        assert topo.endpoint_switch[0] == 0
        assert topo.endpoint_switch[3] == 0
        assert topo.endpoint_switch[4] == 1
        assert topo.endpoint_switch[63] == 15

    def test_every_pair_directly_linked(self):
        topo = full_mesh(64, n_switches=16, links_per_pair=2)
        for a in range(16):
            for b in range(a + 1, 16):
                assert len(topo.trunk_links(a, b)) == 2

    def test_indivisible_endpoint_count_rejected(self):
        with pytest.raises(ConfigurationError):
            full_mesh(65, n_switches=16)

    def test_scales_to_1024(self):
        topo = full_mesh(1024, n_switches=16, links_per_pair=4)
        assert topo.n_endpoints == 1024
        assert topo.diameter() == 2


class TestFatTree:
    def test_shape_64(self):
        topo = fat_tree(64, leaf_size=16, taper=1)
        # 4 leaves + spines; every leaf links to every spine
        n_leaves = 4
        n_spines = topo.n_switches - n_leaves
        assert n_spines >= 1
        assert topo.n_links == n_leaves * n_spines
        assert topo.diameter() == 3

    def test_taper_thins_spines(self):
        full = fat_tree(64, leaf_size=16, taper=1)
        thin = fat_tree(64, leaf_size=16, taper=4)
        assert thin.n_switches < full.n_switches
        assert thin.diameter() == 3

    def test_endpoints_on_leaves_only(self):
        topo = fat_tree(64, leaf_size=16, taper=1)
        n_leaves = 4
        for e in range(64):
            assert topo.endpoint_switch[e] < n_leaves

    def test_indivisible_leaf_size_rejected(self):
        with pytest.raises(ConfigurationError):
            fat_tree(60, leaf_size=16)

    def test_scales_to_1024(self):
        topo = fat_tree(1024, leaf_size=16, taper=1)
        assert topo.n_endpoints == 1024
        assert topo.diameter() == 3


class TestLine:
    def test_line_route_crosses_every_switch(self):
        topo = line(4)
        assert topo.n_switches == 4
        assert topo.route(0, 1) == (0, 1, 2, 3)
        assert topo.diameter() == 4

    def test_line_one_hop_special_case(self):
        topo = line(1)
        assert topo.is_single_switch
        assert topo.route(0, 1) == (0,)

"""Unit tests for the switch-graph topology layer (repro.topo.graph)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.params import PAPER_PARAMS
from repro.topo import Topology, TrunkLink, fat_tree, full_mesh, line


class TestTrunkLink:
    def test_orientation_enforced(self):
        with pytest.raises(ConfigurationError):
            TrunkLink(index=0, a=2, b=1, a_port=0, b_port=0)

    def test_port_on_and_other(self):
        link = TrunkLink(index=0, a=1, b=3, a_port=5, b_port=7)
        assert link.port_on(1) == 5
        assert link.port_on(3) == 7
        assert link.other(1) == 3
        assert link.other(3) == 1
        with pytest.raises(ConfigurationError):
            link.port_on(2)


class TestSingleSwitch:
    def test_single_switch_shape(self):
        topo = Topology.single_switch(8)
        assert topo.is_single_switch
        assert topo.n_switches == 1
        assert topo.n_links == 0
        assert topo.diameter() == 1
        assert topo.route(0, 7) == (0,)

    def test_single_switch_latency_matches_pipe(self):
        topo = Topology.single_switch(8)
        assert (
            topo.path_latency_ps(PAPER_PARAMS, 1) == PAPER_PARAMS.pipe_latency_ps
        )


class TestValidation:
    def test_endpoint_port_collision_rejected(self):
        # two endpoints on the same (switch, port)
        with pytest.raises(ConfigurationError):
            Topology(
                name="bad",
                n_endpoints=2,
                switch_ports=(4,),
                endpoint_switch=(0, 0),
                endpoint_port=(1, 1),
                links=(),
            )

    def test_trunk_endpoint_port_collision_rejected(self):
        with pytest.raises(ConfigurationError):
            Topology(
                name="bad",
                n_endpoints=2,
                switch_ports=(2, 2),
                endpoint_switch=(0, 1),
                endpoint_port=(0, 0),
                links=(TrunkLink(index=0, a=0, b=1, a_port=0, b_port=1),),
            )

    def test_disconnected_diameter_raises(self):
        topo = Topology(
            name="split",
            n_endpoints=2,
            switch_ports=(2, 2),
            endpoint_switch=(0, 1),
            endpoint_port=(0, 0),
            links=(),
        )
        with pytest.raises(ConfigurationError):
            topo.diameter()
        assert topo.route(0, 1) is None


class TestRouting:
    def test_route_is_deterministic(self):
        topo = full_mesh(64, n_switches=16, links_per_pair=4)
        for u, v in [(0, 63), (5, 40), (17, 2)]:
            first = topo.route(u, v)
            for _ in range(5):
                assert topo.route(u, v) == first

    def test_route_length_matches_diameter_bound(self):
        topo = full_mesh(64, n_switches=16, links_per_pair=4)
        assert topo.diameter() == 2
        for u in range(0, 64, 7):
            for v in range(1, 64, 11):
                if u == v:
                    continue
                path = topo.route(u, v)
                assert path is not None
                assert 1 <= len(path) <= 2

    def test_intra_switch_route_is_one_hop(self):
        topo = full_mesh(64, n_switches=16, links_per_pair=4)
        # endpoints 0..3 sit on switch 0
        assert topo.route(0, 3) == (0,)

    def test_health_mask_reroutes(self):
        topo = line(2)  # two switches, one trunk group
        healthy_all = topo.route(0, 1)
        assert healthy_all == (0, 1)
        # masking every parallel link of the only trunk partitions the graph
        import numpy as np

        mask = np.zeros(topo.n_links, dtype=bool)
        assert topo.route(0, 1, mask) is None

    def test_fattree_routes_climb_one_spine(self):
        topo = fat_tree(64, leaf_size=16, taper=1)
        assert topo.diameter() == 3
        path = topo.route(0, 63)
        assert path is not None
        assert len(path) == 3  # leaf -> spine -> leaf


class TestLatency:
    @pytest.mark.parametrize("hops", [1, 2, 3, 4, 6])
    def test_path_latency_matches_analytic_fill(self, hops):
        from repro.networks.multihop import MultiHopModel

        topo = line(max(hops, 1))
        model = MultiHopModel(PAPER_PARAMS, 80)
        assert topo.path_latency_ps(PAPER_PARAMS, hops) == model.tdm_path_fill_ps(
            hops
        )

    def test_latency_monotone_in_hops(self):
        topo = line(4)
        lat = [topo.path_latency_ps(PAPER_PARAMS, h) for h in (1, 2, 3, 4)]
        assert lat == sorted(lat)
        assert len(set(lat)) == 4

"""Exporter tests: span derivation, JSONL/CSV round-trips, Chrome traces.

The synthetic-event tests pin the span-pairing semantics; the end-to-end
tests run real schemes and check **event conservation** — every message
the run accounts for appears in the trace exactly once.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.common import DEFAULT_SEED, figure4_schemes
from repro.experiments.figure4 import figure4_patterns
from repro.obs import (
    Kind,
    TracedRun,
    derive_spans,
    from_jsonl,
    to_chrome_trace,
    to_csv,
    to_jsonl,
)
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceEvent, Tracer


def ev(t, kind, **payload):
    return TraceEvent(t, kind, payload)


def traced_run(params, scheme, size=64, seed=DEFAULT_SEED):
    """Run one scheme traced; returns (tracer, RunResult)."""
    tracer = Tracer()
    net = figure4_schemes(params)[scheme](tracer)
    pattern = figure4_patterns(params)["random-mesh"](size)
    result = net.run(pattern.phases(RngStreams(seed)), pattern.name)
    return tracer, result


class TestDeriveSpans:
    def test_message_span_closed_by_deliver(self):
        spans = derive_spans(
            [
                ev(100, Kind.MSG_INJECT, src=0, dst=1, size=64, seq=7),
                ev(900, Kind.DELIVER, src=0, dst=1, size=64, seq=7),
            ]
        )
        (s,) = spans
        assert s.name == "message" and not s.open
        assert (s.start_ps, s.end_ps, s.duration_ps) == (100, 900, 800)
        assert s.args["end"] == Kind.DELIVER and s.args["seq"] == 7

    def test_drop_also_closes_message(self):
        spans = derive_spans(
            [
                ev(0, Kind.MSG_INJECT, src=2, dst=3, size=8, seq=0),
                ev(50, Kind.DROP, src=2, dst=3, size=8, seq=0),
            ]
        )
        assert spans[0].args["end"] == Kind.DROP and not spans[0].open

    def test_seq_is_part_of_message_identity(self):
        # two in-flight messages on the same (src, dst) pair nest correctly
        spans = derive_spans(
            [
                ev(0, Kind.MSG_INJECT, src=0, dst=1, size=8, seq=0),
                ev(10, Kind.MSG_INJECT, src=0, dst=1, size=8, seq=1),
                ev(20, Kind.DELIVER, src=0, dst=1, size=8, seq=0),
                ev(30, Kind.DELIVER, src=0, dst=1, size=8, seq=1),
            ]
        )
        assert [(s.start_ps, s.end_ps) for s in spans] == [(0, 20), (10, 30)]

    def test_unclosed_span_flagged_open_at_last_timestamp(self):
        spans = derive_spans(
            [
                ev(5, Kind.CONN_ESTABLISH, src=1, dst=2, slot=0),
                ev(80, Kind.SL_PASS, slot=0, toggles=0, blocked=0),
            ]
        )
        (s,) = spans
        assert s.open and s.end_ps == 80

    def test_reopen_keeps_original_start(self):
        spans = derive_spans(
            [
                ev(10, Kind.CONN_ESTABLISH, src=0, dst=1, slot=0),
                ev(20, Kind.CONN_ESTABLISH, src=0, dst=1, slot=0),
                ev(30, Kind.CONN_RELEASE, src=0, dst=1, slot=0),
            ]
        )
        (s,) = spans
        assert (s.start_ps, s.end_ps) == (10, 30)

    def test_end_without_begin_is_ignored(self):
        assert derive_spans([ev(10, Kind.DELIVER, src=0, dst=1, seq=0)]) == []

    def test_spans_sorted_by_start(self):
        spans = derive_spans(
            [
                ev(50, Kind.MSG_INJECT, src=1, dst=0, size=8, seq=0),
                ev(0, Kind.CONN_ESTABLISH, src=0, dst=1, slot=0),
                ev(60, Kind.DELIVER, src=1, dst=0, size=8, seq=0),
                ev(70, Kind.CONN_RELEASE, src=0, dst=1, slot=0),
            ]
        )
        assert [s.start_ps for s in spans] == sorted(s.start_ps for s in spans)


class TestJsonl:
    def test_round_trip_preserves_events(self, tmp_path):
        events = [
            ev(0, Kind.MSG_INJECT, src=0, dst=1, size=64, seq=0),
            ev(123, Kind.XFER, src=0, dst=1, bytes=64, slot=2),
            ev(999, Kind.DELIVER, src=0, dst=1, size=64, seq=0),
        ]
        path = tmp_path / "t.jsonl"
        assert to_jsonl(events, path, label="demo") == 3
        back = from_jsonl(path)
        assert list(back) == ["demo"]
        assert back["demo"] == events

    def test_multi_run_labels_kept_separate(self, tmp_path):
        runs = [
            TracedRun("a", [ev(1, Kind.SL_PASS, slot=0, toggles=0, blocked=0)]),
            TracedRun("b", [ev(2, Kind.SL_PASS, slot=1, toggles=1, blocked=0)]),
        ]
        path = tmp_path / "t.jsonl"
        assert to_jsonl(runs, path) == 2
        back = from_jsonl(path)
        assert sorted(back) == ["a", "b"]
        assert back["a"][0].payload["slot"] == 0
        assert back["b"][0].payload["slot"] == 1

    def test_accepts_a_tracer_directly(self, tmp_path):
        tracer = Tracer()
        tracer.record(5, Kind.REQ_RISE, src=3, dst=4)
        path = tmp_path / "t.jsonl"
        assert to_jsonl(tracer, path, label="x") == 1
        assert from_jsonl(path)["x"][0].kind == Kind.REQ_RISE


class TestCsv:
    def test_header_is_union_of_payload_keys(self, tmp_path):
        events = [
            ev(0, Kind.REQ_RISE, src=0, dst=1),
            ev(1, Kind.SLOT_TRANSFER, slot=2, conns=1, bytes=80),
        ]
        path = tmp_path / "t.csv"
        assert to_csv(events, path) == 2
        lines = path.read_text().splitlines()
        assert lines[0] == "time_ps,kind,run,bytes,conns,dst,slot,src"
        assert lines[1] == "0,req-rise,run,,,1,,0"
        assert lines[2] == "1,slot-transfer,run,80,1,,2,"


class TestChromeTrace:
    def test_structure_and_counts(self, tmp_path):
        events = [
            ev(0, Kind.MSG_INJECT, src=0, dst=1, size=64, seq=0),
            ev(1_000_000, Kind.SL_PASS, slot=0, toggles=1, blocked=0),
            ev(2_000_000, Kind.SLOT_TRANSFER, slot=3, conns=1, bytes=80),
            ev(3_000_000, Kind.DELIVER, src=0, dst=1, size=64, seq=0),
        ]
        path = tmp_path / "t.json"
        counts = to_chrome_trace(events, path, label="demo")
        assert counts == {"runs": 1, "spans": 1, "instants": 2}
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ns"
        by_ph = {}
        for entry in doc["traceEvents"]:
            by_ph.setdefault(entry["ph"], []).append(entry)
        # process metadata names the run
        procs = [m for m in by_ph["M"] if m["name"] == "process_name"]
        assert procs[0]["args"]["name"] == "demo"
        # the message span: ps -> us conversion
        (span,) = by_ph["X"]
        assert span["name"] == "message 0->1"
        assert span["ts"] == 0.0 and span["dur"] == 3.0
        # instants route to their threads: scheduler=900, slot 3 -> 1003
        tids = {i["name"]: i["tid"] for i in by_ph["i"]}
        assert tids[Kind.SL_PASS] == 900
        assert tids[Kind.SLOT_TRANSFER] == 1003
        thread_names = {
            m["tid"]: m["args"]["name"]
            for m in by_ph["M"]
            if m["name"] == "thread_name"
        }
        assert thread_names[900] == "scheduler"
        assert thread_names[1003] == "slot 3"
        assert thread_names[0] == "port 0"

    def test_instants_can_be_suppressed(self, tmp_path):
        events = [ev(0, Kind.SL_PASS, slot=0, toggles=0, blocked=0)]
        counts = to_chrome_trace(
            events, tmp_path / "t.json", include_instants=False
        )
        assert counts["instants"] == 0

    def test_multi_run_gets_one_process_each(self, tmp_path):
        runs = [
            TracedRun("wormhole", [ev(0, Kind.WORM_GRANTED, src=0, dst=1, bytes=8)]),
            TracedRun("circuit", [ev(0, Kind.CIRCUIT_TX, src=0, dst=1, bytes=8, reused=False)]),
        ]
        path = tmp_path / "t.json"
        counts = to_chrome_trace(runs, path)
        assert counts["runs"] == 2
        doc = json.loads(path.read_text())
        pids = {
            m["args"]["name"]: m["pid"]
            for m in doc["traceEvents"]
            if m["ph"] == "M" and m["name"] == "process_name"
        }
        assert pids == {"wormhole": 1, "circuit": 2}


@pytest.mark.parametrize(
    "scheme", ["wormhole", "circuit", "dynamic-tdm", "preload"]
)
class TestEventConservation:
    """Real runs: the trace accounts for every message the result reports."""

    def test_inject_deliver_and_spans_balance(self, params8, scheme, tmp_path):
        tracer, result = traced_run(params8, scheme)
        counts = tracer.kind_counts
        # healthy run: every injected message is delivered, none dropped
        assert counts[Kind.MSG_INJECT] == len(result.records)
        assert counts[Kind.DELIVER] == len(result.records)
        assert Kind.DROP not in counts
        events = list(tracer.events())
        messages = [s for s in derive_spans(events) if s.name == "message"]
        assert len(messages) == len(result.records)
        assert all(not s.open for s in messages)
        assert all(s.duration_ps > 0 for s in messages)
        # ... and the chrome export carries exactly those spans
        run = TracedRun(scheme, events, dict(result.counters))
        chrome = to_chrome_trace([run], tmp_path / "t.json")
        assert chrome["spans"] >= len(messages)

    def test_jsonl_round_trip_on_real_run(self, params8, scheme, tmp_path):
        tracer, _ = traced_run(params8, scheme)
        events = list(tracer.events())
        path = tmp_path / "run.jsonl"
        assert to_jsonl(events, path, label=scheme) == len(events)
        assert from_jsonl(path)[scheme] == events


def test_schemes_share_identical_workload(params8):
    """The trace CLI promise: every scheme sees byte-identical traffic."""
    injected = {}
    for scheme in ("wormhole", "dynamic-tdm"):
        tracer, _ = traced_run(params8, scheme)
        injected[scheme] = sorted(
            (e.payload["src"], e.payload["dst"], e.payload["size"])
            for e in tracer.events(Kind.MSG_INJECT)
        )
    assert injected["wormhole"] == injected["dynamic-tdm"]

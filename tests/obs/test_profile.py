"""Profiling harness: perf-counter formatting and the cProfile wrapper."""

from __future__ import annotations

from repro.obs import ProfileReport, format_perf, profile_run
from repro.sim.engine import Simulator


class TestFormatPerf:
    def test_aligned_ints_and_floats(self):
        text = format_perf({"events_executed": 1234, "cancelled_ratio": 0.25})
        lines = text.splitlines()
        assert lines[0].endswith("1,234")
        assert lines[1].endswith("0.250")


class TestProfileRun:
    def test_returns_result_and_wall_time(self):
        result, report = profile_run(lambda: 42, label="answer")
        assert result == 42
        assert report.label == "answer"
        assert report.wall_s >= 0.0
        assert report.hotspots == ""

    def test_cprofile_attributes_hotspots(self):
        def busy():
            sim = Simulator()
            for i in range(200):
                sim.schedule(i * 10, lambda: None)
            sim.run()
            return sim.events_executed

        result, report = profile_run(busy, label="sim", with_cprofile=True)
        assert result == 200
        assert "cumulative" in report.hotspots
        assert "run" in report.hotspots

    def test_format_includes_perf_counters(self):
        sim = Simulator()
        sim.schedule(0, lambda: None)
        sim.run()
        _, report = profile_run(lambda: None, label="x")
        report.perf.update(sim.perf_counters())
        text = report.format()
        assert "profile: x" in text
        assert "events_executed" in text

    def test_report_without_extras(self):
        text = ProfileReport("bare", wall_s=0.5).format()
        assert text == "=== profile: bare (wall 0.500 s) ==="

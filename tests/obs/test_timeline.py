"""Timeline reductions: slot occupancy, port duty cycles, request latency."""

from __future__ import annotations

import pytest

from repro.experiments.common import figure4_schemes
from repro.experiments.figure4 import figure4_patterns
from repro.obs import (
    Kind,
    port_duty_cycle,
    request_latencies,
    slot_occupancy,
    utilization_report,
)
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceEvent, Tracer


def ev(t, kind, **payload):
    return TraceEvent(t, kind, payload)


class TestSlotOccupancy:
    def test_counts_active_and_idle_periods(self):
        stats = slot_occupancy(
            [
                ev(0, Kind.SLOT_TRANSFER, slot=0, conns=2, bytes=160),
                ev(100, Kind.SLOT_TRANSFER, slot=0, conns=0, bytes=0),
                ev(100, Kind.SLOT_TRANSFER, slot=1, conns=1, bytes=80),
                ev(200, Kind.SLOT_TRANSFER, slot=0, conns=1, bytes=80),
            ]
        )
        assert sorted(stats) == [0, 1]
        s0 = stats[0]
        assert (s0.periods, s0.active_periods, s0.conns, s0.bytes) == (3, 2, 3, 240)
        assert s0.occupancy == pytest.approx(2 / 3)
        assert stats[1].occupancy == 1.0

    def test_ignores_other_kinds(self):
        assert slot_occupancy([ev(0, Kind.XFER, src=0, dst=1, bytes=8, slot=0)]) == {}


class TestPortDutyCycle:
    def test_duty_is_fraction_of_buckets_with_transfers(self):
        # span covers buckets 0..3; port 0 active in 2 of 4, port 1 in 1
        events = [
            ev(0, Kind.XFER, src=0, dst=1, bytes=80, slot=0),
            ev(150, Kind.XFER, src=0, dst=2, bytes=80, slot=1),
            ev(399, Kind.WORM_GRANTED, src=1, dst=0, bytes=80),
        ]
        ports = port_duty_cycle(events, period_ps=100)
        assert ports[0].duty_cycle == pytest.approx(2 / 4)
        assert ports[1].duty_cycle == pytest.approx(1 / 4)
        assert ports[0].transfers == 2 and ports[0].bytes == 160
        assert (ports[1].first_ps, ports[1].last_ps) == (399, 399)

    def test_all_transfer_kinds_count(self):
        events = [
            ev(0, Kind.XFER, src=0, dst=1, bytes=1, slot=0),
            ev(0, Kind.WORM_GRANTED, src=1, dst=2, bytes=1),
            ev(0, Kind.CIRCUIT_TX, src=2, dst=3, bytes=1, reused=True),
            ev(0, Kind.DELIVER, src=3, dst=4, size=1, seq=0),  # not a transfer
        ]
        assert sorted(port_duty_cycle(events, 100)) == [0, 1, 2]

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError, match="period_ps"):
            port_duty_cycle([], period_ps=0)

    def test_empty_events(self):
        assert port_duty_cycle([], period_ps=100) == {}


class TestRequestLatencies:
    def test_pairs_rise_with_next_establish(self):
        lat = request_latencies(
            [
                ev(100, Kind.REQ_RISE, src=0, dst=1),
                ev(350, Kind.CONN_ESTABLISH, src=0, dst=1, slot=2),
            ]
        )
        assert lat == [250]

    def test_rerise_keeps_original_timestamp(self):
        # the wire stayed high; the wait started at the first rise
        lat = request_latencies(
            [
                ev(100, Kind.REQ_RISE, src=0, dst=1),
                ev(200, Kind.REQ_RISE, src=0, dst=1),
                ev(300, Kind.CONN_ESTABLISH, src=0, dst=1, slot=0),
            ]
        )
        assert lat == [200]

    def test_req_drop_cancels_pending_request(self):
        lat = request_latencies(
            [
                ev(100, Kind.REQ_RISE, src=0, dst=1),
                ev(150, Kind.REQ_DROP, src=0, dst=1),
                ev(300, Kind.CONN_ESTABLISH, src=0, dst=1, slot=0),
            ]
        )
        assert lat == []

    def test_establish_without_rise_ignored(self):
        assert request_latencies(
            [ev(10, Kind.CONN_ESTABLISH, src=0, dst=1, slot=0)]
        ) == []

    def test_pairs_are_independent(self):
        lat = request_latencies(
            [
                ev(0, Kind.REQ_RISE, src=0, dst=1),
                ev(10, Kind.REQ_RISE, src=2, dst=3),
                ev(50, Kind.CONN_ESTABLISH, src=2, dst=3, slot=0),
                ev(90, Kind.CONN_ESTABLISH, src=0, dst=1, slot=1),
            ]
        )
        assert sorted(lat) == [40, 90]


class TestUtilizationReport:
    def test_empty_trace(self):
        report = utilization_report([], period_ps=100_000)
        assert "no transfer activity" in report

    def test_real_dynamic_tdm_run(self, params8):
        tracer = Tracer()
        net = figure4_schemes(params8)["dynamic-tdm"](tracer)
        pattern = figure4_patterns(params8)["random-mesh"](64)
        net.run(pattern.phases(RngStreams(1)), pattern.name)
        events = list(tracer.events())
        report = utilization_report(events, params8.slot_ps, label="dyn")
        assert "utilization: dyn" in report
        assert "slot  periods  active" in report
        assert "port  transfers" in report
        assert "request->grant latency" in report
        # every duty cycle is a sane fraction
        for stats in port_duty_cycle(events, params8.slot_ps).values():
            assert 0.0 < stats.duty_cycle <= 1.0
        for stats in slot_occupancy(events).values():
            assert 0.0 <= stats.occupancy <= 1.0

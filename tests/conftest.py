"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.params import PAPER_PARAMS, SystemParams
from repro.sim.rng import RngStreams


@pytest.fixture
def params16() -> SystemParams:
    """A 16-port system with the paper's timing constants."""
    return PAPER_PARAMS.with_overrides(n_ports=16)


@pytest.fixture
def params8() -> SystemParams:
    """An 8-port system for fast scheduler/network unit tests."""
    return PAPER_PARAMS.with_overrides(n_ports=8)


@pytest.fixture
def rng() -> RngStreams:
    return RngStreams(1234)

"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import signal

import pytest

from repro.params import PAPER_PARAMS, SystemParams
from repro.sim.rng import RngStreams

#: hard per-test wall-clock ceiling; generous — tier-1 tests finish in
#: milliseconds, and even the soak/daemon tests stay under a few seconds
TEST_TIMEOUT_S = 120


@pytest.fixture(autouse=True)
def _global_test_timeout():
    """SIGALRM watchdog so a hung event loop fails the test, not the CI job.

    ``pytest-timeout`` is deliberately not a dependency; SIGALRM covers the
    same ground on the POSIX runners CI uses.  On platforms without SIGALRM
    (Windows) this fixture is a no-op.
    """
    if not hasattr(signal, "SIGALRM"):
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(f"test exceeded the global {TEST_TIMEOUT_S}s timeout")

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.alarm(TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def params16() -> SystemParams:
    """A 16-port system with the paper's timing constants."""
    return PAPER_PARAMS.with_overrides(n_ports=16)


@pytest.fixture
def params8() -> SystemParams:
    """An 8-port system for fast scheduler/network unit tests."""
    return PAPER_PARAMS.with_overrides(n_ports=8)


@pytest.fixture
def rng() -> RngStreams:
    return RngStreams(1234)

"""Picklable cell runners for the execution-engine tests.

Pool workers unpickle runner functions by module-qualified name, so every
runner the pooled tests use must live at module level in an importable
module — test-class methods and closures cannot cross the process
boundary.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True, frozen=True)
class ValueCell:
    value: int


def square(cell: ValueCell) -> int:
    return cell.value * cell.value


def echo_seed(cell: ValueCell, seed: int) -> tuple[int, int]:
    return (cell.value, seed)


#: the ad-hoc scheme name the pollution runner registers
POLLUTION_SCHEME = "exec-test-pollution"


def pollute_and_report(cell: ValueCell) -> dict:
    """Observe, then dirty, every known piece of process-global state.

    Returns what was dirty on entry: with working worker resets a reused
    worker must report a clean slate for every cell, no matter what the
    previous cell did to the scheme registry or the shared null tracer.
    """
    from repro.networks import registry
    from repro.sim.trace import NULL_TRACER, Tracer

    observed = {
        "value": cell.value,
        "scheme_leaked": POLLUTION_SCHEME in registry._ALIAS_TO_NAME,
        "tracer_enabled": bool(NULL_TRACER.enabled),
        "tracer_events": len(NULL_TRACER),
    }
    if POLLUTION_SCHEME not in registry._ALIAS_TO_NAME:
        info = registry.get_scheme("wormhole")
        registry.register_scheme(
            POLLUTION_SCHEME, info.factory, capabilities=info.capabilities
        )
    NULL_TRACER.enabled = True
    # the base-class record bypasses _NullTracer's no-op override, planting
    # a real event the next cell would see if resets ever regressed
    Tracer.record(NULL_TRACER, 0, "exec-test-pollution")
    return observed

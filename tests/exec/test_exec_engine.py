"""map_cells engine tests: ordering, caching, seeds, stats, knobs."""

from __future__ import annotations

import pytest
from _cellfuncs import ValueCell, echo_seed, square

import repro.exec.engine as engine_mod
from repro.errors import ConfigurationError
from repro.exec import (
    JOBS_ENV_VAR,
    CellEncodingError,
    ResultCache,
    canonical_json,
    derive_seed,
    map_cells,
    resolve_jobs,
)

CELLS = [ValueCell(v) for v in range(6)]


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(2) == 2

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs() == 5

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs() >= 1

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ConfigurationError, match="jobs"):
            resolve_jobs(bad)


class TestOrderedReduction:
    def test_serial_order_and_payloads(self):
        outcome = map_cells(square, CELLS, jobs=1)
        assert outcome.payloads == [0, 1, 4, 9, 16, 25]
        assert list(outcome) == outcome.payloads
        assert len(outcome) == 6
        assert outcome[3] == 9

    @pytest.mark.parametrize("jobs", [2, 8])
    def test_pool_matches_serial_exactly(self, jobs):
        serial = map_cells(square, CELLS, jobs=1)
        pooled = map_cells(square, CELLS, jobs=jobs)
        assert pooled.payloads == serial.payloads
        assert pooled.cell_seeds == serial.cell_seeds

    def test_force_pool_with_one_worker(self):
        outcome = map_cells(square, CELLS, jobs=1, force_pool=True)
        assert outcome.payloads == [0, 1, 4, 9, 16, 25]
        assert outcome.stats.jobs == 1

    def test_empty_cells(self):
        outcome = map_cells(square, [], jobs=1)
        assert outcome.payloads == []
        assert outcome.stats.cells_total == 0

    def test_unencodable_cell_rejected_up_front(self):
        with pytest.raises(CellEncodingError):
            map_cells(square, [object()], jobs=1)


class TestSeedDerivation:
    def test_with_seed_passes_the_derived_seed(self):
        outcome = map_cells(echo_seed, CELLS, root_seed=99, jobs=1, with_seed=True)
        for cell, (value, seed), derived in zip(
            CELLS, outcome.payloads, outcome.cell_seeds
        ):
            assert value == cell.value
            assert seed == derived
            assert derived == derive_seed(99, canonical_json(cell))

    @pytest.mark.parametrize("jobs", [2, 8])
    def test_pool_seeds_match_serial(self, jobs):
        serial = map_cells(echo_seed, CELLS, root_seed=7, jobs=1, with_seed=True)
        pooled = map_cells(echo_seed, CELLS, root_seed=7, jobs=jobs, with_seed=True)
        assert pooled.payloads == serial.payloads

    def test_root_seed_changes_every_cell_seed(self):
        a = map_cells(echo_seed, CELLS, root_seed=1, jobs=1, with_seed=True)
        b = map_cells(echo_seed, CELLS, root_seed=2, jobs=1, with_seed=True)
        assert all(x != y for x, y in zip(a.cell_seeds, b.cell_seeds))


class TestCaching:
    def test_cold_then_warm(self, tmp_path):
        store = ResultCache(tmp_path)
        cold = map_cells(square, CELLS, jobs=1, cache=store)
        assert (cold.stats.cells_run, cold.stats.cells_cached) == (6, 0)
        warm = map_cells(square, CELLS, jobs=1, cache=store)
        assert (warm.stats.cells_run, warm.stats.cells_cached) == (0, 6)
        assert warm.payloads == cold.payloads
        assert warm.stats.cached_wall_s > 0

    def test_cache_accepts_a_path(self, tmp_path):
        map_cells(square, CELLS, jobs=1, cache=tmp_path)
        warm = map_cells(square, CELLS, jobs=1, cache=tmp_path)
        assert warm.stats.cells_cached == 6

    def test_partial_hits(self, tmp_path):
        store = ResultCache(tmp_path)
        map_cells(square, CELLS[:3], jobs=1, cache=store)
        mixed = map_cells(square, CELLS, jobs=1, cache=store)
        assert (mixed.stats.cells_run, mixed.stats.cells_cached) == (3, 3)
        assert mixed.payloads == [0, 1, 4, 9, 16, 25]

    def test_refresh_recomputes(self, tmp_path):
        store = ResultCache(tmp_path)
        map_cells(square, CELLS, jobs=1, cache=store)
        refreshed = map_cells(square, CELLS, jobs=1, cache=store, refresh=True)
        assert (refreshed.stats.cells_run, refreshed.stats.cells_cached) == (6, 0)
        warm = map_cells(square, CELLS, jobs=1, cache=store)
        assert warm.stats.cells_cached == 6

    def test_root_seed_partitions_the_cache(self, tmp_path):
        store = ResultCache(tmp_path)
        map_cells(square, CELLS, root_seed=1, jobs=1, cache=store)
        other = map_cells(square, CELLS, root_seed=2, jobs=1, cache=store)
        assert other.stats.cells_cached == 0

    def test_poisoned_fingerprint_misses(self, tmp_path, monkeypatch):
        # a source change moves every key: entries written under the old
        # fingerprint must never be served
        store = ResultCache(tmp_path)
        map_cells(square, CELLS, jobs=1, cache=store)
        monkeypatch.setattr(engine_mod, "code_fingerprint", lambda: "0" * 64)
        stale = map_cells(square, CELLS, jobs=1, cache=store)
        assert (stale.stats.cells_run, stale.stats.cells_cached) == (6, 0)
        assert stale.payloads == [0, 1, 4, 9, 16, 25]

    def test_pool_populates_the_cache_too(self, tmp_path):
        store = ResultCache(tmp_path)
        map_cells(square, CELLS, jobs=2, cache=store)
        warm = map_cells(square, CELLS, jobs=1, cache=store)
        assert warm.stats.cells_cached == 6

    def test_no_cache_by_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        map_cells(square, CELLS, jobs=1)
        assert ResultCache(tmp_path).stats().entries == 0


class TestStats:
    def test_counters_shape(self):
        stats = map_cells(square, CELLS, jobs=1, label="unit").stats
        counters = stats.as_counters()
        for key in (
            "cells_total",
            "cells_run",
            "cells_cached",
            "jobs",
            "elapsed_s",
            "serial_estimate_s",
            "speedup_vs_serial",
            "pool_utilization",
        ):
            assert key in counters
        assert stats.label == "unit"
        assert len(stats.cell_wall) == 6
        assert "unit" in stats.summary()

    def test_progress_writes_to_stderr(self, capsys):
        map_cells(square, CELLS, jobs=1, label="prog", progress=True)
        err = capsys.readouterr().err
        assert "prog" in err
        assert "6 cells" in err

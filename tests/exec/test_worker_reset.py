"""Worker state-reset regression tests (the satellite bugfix).

A reused pool worker runs many cells back to back; before the reset fix a
cell that registered an ad-hoc scheme or dirtied the shared null tracer
would leak that state into the next cell.  The pollution runner dirties
everything it can and reports what it *observed on entry* — which must be
a clean slate for every cell.
"""

from __future__ import annotations

from _cellfuncs import POLLUTION_SCHEME, ValueCell, pollute_and_report

from repro.exec import map_cells, reset_process_state
from repro.networks import registry
from repro.sim.trace import NULL_TRACER


def _clean(observed: dict) -> bool:
    return (
        not observed["scheme_leaked"]
        and not observed["tracer_enabled"]
        and observed["tracer_events"] == 0
    )


class TestReusedWorkerIsolation:
    def test_two_cells_back_to_back_in_one_worker(self):
        # force_pool + jobs=1: both (different) cells run in the same
        # reused worker process, the regression's exact shape
        outcome = map_cells(
            pollute_and_report,
            [ValueCell(1), ValueCell(2)],
            jobs=1,
            force_pool=True,
        )
        first, second = outcome.payloads
        assert first["value"] == 1 and second["value"] == 2
        assert _clean(first), f"first cell saw inherited dirt: {first}"
        assert _clean(second), f"second cell saw the first cell's dirt: {second}"

    def test_parent_pollution_not_inherited_by_fork(self):
        # dirty the parent process, then fan out: the pool initializer must
        # scrub the forked image before any cell runs
        info = registry.get_scheme("wormhole")
        registry.register_scheme(
            POLLUTION_SCHEME, info.factory, capabilities=info.capabilities
        )
        try:
            outcome = map_cells(
                pollute_and_report, [ValueCell(3)], jobs=1, force_pool=True
            )
            assert _clean(outcome.payloads[0])
            # the parent's own registration must survive — resets are
            # worker-side only
            assert POLLUTION_SCHEME in registry._ALIAS_TO_NAME
        finally:
            reset_process_state()
        assert POLLUTION_SCHEME not in registry._ALIAS_TO_NAME

    def test_serial_path_does_not_reset_caller_state(self):
        # jobs=1 without force_pool runs in the caller's process and must
        # not deregister schemes the caller registered
        info = registry.get_scheme("wormhole")
        registry.register_scheme(
            POLLUTION_SCHEME, info.factory, capabilities=info.capabilities
        )
        try:
            outcome = map_cells(pollute_and_report, [ValueCell(4)], jobs=1)
            assert outcome.payloads[0]["scheme_leaked"]
            assert POLLUTION_SCHEME in registry._ALIAS_TO_NAME
        finally:
            reset_process_state()
            NULL_TRACER.clear()
            NULL_TRACER.enabled = False


class TestResetProcessState:
    def test_idempotent_and_restores_baseline(self):
        info = registry.get_scheme("wormhole")
        registry.register_scheme(
            POLLUTION_SCHEME, info.factory, capabilities=info.capabilities
        )
        NULL_TRACER.enabled = True
        reset_process_state()
        assert POLLUTION_SCHEME not in registry._ALIAS_TO_NAME
        assert POLLUTION_SCHEME not in registry._REGISTRY
        assert not NULL_TRACER.enabled
        assert len(NULL_TRACER) == 0
        reset_process_state()  # idempotent
        assert "wormhole" in registry._ALIAS_TO_NAME

    def test_baseline_schemes_untouched(self):
        before = dict(registry._ALIAS_TO_NAME)
        reset_process_state()
        assert registry._ALIAS_TO_NAME == before

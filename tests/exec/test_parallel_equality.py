"""Parallel-vs-serial bit-equality for the migrated sweep drivers.

The tentpole guarantee: for every driver and every scheme, the result of a
sweep is byte-identical whether it ran in-process (``jobs=1``), on a small
pool, or on a large pool — and whether the payloads came from the
simulator or from the content-addressed cache.  ``ExperimentPoint`` and
``FaultPoint`` are value types, so ``==`` compares every field including
the counters dicts.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import FIGURE4_SCHEMES
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.faults import run_faults
from repro.experiments.loadlatency import run_load_latency
from repro.params import PAPER_PARAMS

PARAMS = PAPER_PARAMS.with_overrides(n_ports=8)


@pytest.fixture(scope="module")
def figure4_serial():
    return run_figure4(
        params=PARAMS, sizes=(8, 64), patterns=("scatter", "two-phase"), jobs=1
    )


class TestFigure4:
    def test_covers_all_four_schemes(self, figure4_serial):
        for pattern in ("scatter", "two-phase"):
            assert tuple(figure4_serial.series[pattern]) == FIGURE4_SCHEMES

    @pytest.mark.parametrize("jobs", [2, 8])
    def test_bit_identical_across_job_counts(self, figure4_serial, jobs):
        result = run_figure4(
            params=PARAMS, sizes=(8, 64), patterns=("scatter", "two-phase"), jobs=jobs
        )
        assert result.series == figure4_serial.series
        assert result.points == figure4_serial.points

    def test_bit_identical_from_the_cache(self, figure4_serial, tmp_path):
        kwargs = dict(
            params=PARAMS, sizes=(8, 64), patterns=("scatter", "two-phase")
        )
        cold = run_figure4(jobs=1, cache=tmp_path, **kwargs)
        warm = run_figure4(jobs=1, cache=tmp_path, **kwargs)
        assert warm.exec_stats.cells_cached == warm.exec_stats.cells_total
        assert warm.series == figure4_serial.series
        assert warm.points == cold.points == figure4_serial.points


class TestFigure5:
    def test_bit_identical_across_job_counts(self):
        kwargs = dict(params=PARAMS, determinism=(0.5, 1.0), messages_per_node=8)
        serial = run_figure5(jobs=1, **kwargs)
        for jobs in (2, 8):
            pooled = run_figure5(jobs=jobs, **kwargs)
            assert pooled.series == serial.series
            assert pooled.points == serial.points


class TestLoadLatency:
    def test_bit_identical_across_job_counts(self):
        kwargs = dict(params=PARAMS, loads=(0.2, 0.6), duration_ns=2_000.0)
        serial = run_load_latency(jobs=1, **kwargs)
        pooled = run_load_latency(jobs=2, **kwargs)
        assert pooled.series == serial.series


class TestFaults:
    def test_bit_identical_across_job_counts(self):
        kwargs = dict(
            params=PARAMS,
            rates=(0.0, 1.0),
            size_bytes=128,
            messages_per_node=2,
            schemes=("wormhole", "dynamic-tdm"),
        )
        serial = run_faults(jobs=1, **kwargs)
        pooled = run_faults(jobs=2, **kwargs)
        assert pooled.delivered == serial.delivered
        assert pooled.bandwidth == serial.bandwidth
        assert pooled.recovery_p99_ns == serial.recovery_p99_ns
        assert pooled.points == serial.points

"""Content-addressed result cache unit tests."""

from __future__ import annotations

import os
from unittest import mock

import pytest

from repro.exec import CACHE_DIR_ENV_VAR, ResultCache
from repro.exec.cache import default_cache_dir


def _key(cell: str = "c1", fingerprint: str = "f" * 64) -> str:
    return ResultCache.key("tests:runner", cell, 42, fingerprint)


class TestKeys:
    def test_key_covers_every_component(self):
        base = _key()
        assert ResultCache.key("tests:other", "c1", 42, "f" * 64) != base
        assert _key(cell="c2") != base
        assert ResultCache.key("tests:runner", "c1", 43, "f" * 64) != base
        assert _key(fingerprint="e" * 64) != base

    def test_default_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"
        assert ResultCache().root == tmp_path / "alt"


class TestGetPut:
    def test_roundtrip(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put(_key(), {"eff": 0.5}, wall_s=1.25)
        hit = store.get(_key())
        assert hit is not None
        assert hit.payload == {"eff": 0.5}
        assert hit.wall_s == 1.25

    def test_absent_is_miss(self, tmp_path):
        assert ResultCache(tmp_path).get(_key()) is None

    def test_different_fingerprint_is_miss(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put(_key(fingerprint="a" * 64), 1, wall_s=0.1)
        assert store.get(_key(fingerprint="b" * 64)) is None

    def test_corrupt_entry_is_miss(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put(_key(), [1, 2], wall_s=0.1)
        path = store._path(_key())
        path.write_bytes(path.read_bytes()[:-7])
        assert store.get(_key()) is None

    def test_garbage_entry_is_miss(self, tmp_path):
        store = ResultCache(tmp_path)
        path = store._path(_key())
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert store.get(_key()) is None

    def test_atomic_write_leaves_no_tmp_files(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put(_key(), 1, wall_s=0.1)
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert [p.suffix for p in leftovers] == [".pkl"]

    def test_failed_put_cleans_its_temp_file(self, tmp_path):
        store = ResultCache(tmp_path)
        with pytest.raises(OSError):
            with mock.patch("os.replace", side_effect=OSError("disk full")):
                store.put(_key(), 1, wall_s=0.1)
        assert [p for p in tmp_path.rglob("*") if p.is_file()] == []
        assert store.get(_key()) is None

    def test_unpicklable_payload_raises_and_leaves_nothing(self, tmp_path):
        store = ResultCache(tmp_path)
        with pytest.raises(Exception):
            store.put(_key(), lambda: None, wall_s=0.1)
        assert [p for p in tmp_path.rglob("*") if p.is_file()] == []

    def test_truncated_to_empty_is_miss(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put(_key(), {"v": 1}, wall_s=0.1)
        store._path(_key()).write_bytes(b"")
        assert store.get(_key()) is None

    def test_payload_bitflip_is_miss(self, tmp_path):
        # flip one byte inside the entry blob: the payload digest must catch it
        store = ResultCache(tmp_path)
        store.put(_key(), {"v": list(range(5000))}, wall_s=0.1)
        path = store._path(_key())
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert store.get(_key()) is None


class TestMaintenance:
    def test_stats_and_clear(self, tmp_path):
        store = ResultCache(tmp_path)
        assert store.stats().entries == 0
        store.put(_key("c1"), 1, wall_s=1.0)
        store.put(_key("c2"), 2, wall_s=2.5)
        s = store.stats()
        assert s.entries == 2
        assert s.total_bytes > 0
        assert s.saved_wall_s == 3.5
        assert s.root == str(tmp_path)
        assert store.clear() == 2
        assert store.stats().entries == 0

    def test_verify_flags_corruption(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put(_key("c1"), 1, wall_s=1.0)
        store.put(_key("c2"), 2, wall_s=1.0)
        assert store.verify() == (2, [])
        victim = store._path(_key("c2"))
        victim.write_bytes(victim.read_bytes()[:-3])
        ok, bad = store.verify()
        assert ok == 1
        assert bad == [str(victim)]

    def test_clear_removes_stale_tmp_files(self, tmp_path):
        # a crash mid-put leaves {key}.tmp.{pid}; clear must reclaim it
        store = ResultCache(tmp_path)
        store.put(_key("c1"), 1, wall_s=1.0)
        stale = store._path(_key("c2")).with_suffix(".tmp.12345")
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_bytes(b"half-written entry")
        assert store.clear() == 2
        assert not stale.exists()
        assert [p for p in tmp_path.rglob("*") if p.is_file()] == []

    def test_verify_surfaces_stale_tmp_files(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put(_key("c1"), 1, wall_s=1.0)
        stale = store._path(_key("c1")).with_suffix(".tmp.999")
        stale.write_bytes(b"orphan")
        ok, bad = store.verify()
        assert ok == 1
        assert bad == [str(stale)]

    def test_verify_flags_misfiled_entries(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put(_key("c1"), 1, wall_s=1.0)
        src = store._path(_key("c1"))
        wrong = store._path(_key("c2"))
        wrong.parent.mkdir(parents=True, exist_ok=True)
        os.rename(src, wrong)
        ok, bad = store.verify()
        assert ok == 0
        assert bad == [str(wrong)]

"""Canonical encoding, seed derivation, and fingerprint unit tests."""

from __future__ import annotations

import dataclasses

import pytest

from repro.exec import (
    CellEncodingError,
    canonical_encode,
    canonical_json,
    code_fingerprint,
    derive_seed,
)


@dataclasses.dataclass(frozen=True)
class _Cell:
    name: str
    size: int


@dataclasses.dataclass(frozen=True)
class _OtherCell:
    name: str
    size: int


class TestCanonicalEncode:
    def test_primitives_pass_through(self):
        for value in ("s", 7, 1.5, True, False, None):
            assert canonical_encode(value) == value

    def test_tuples_and_lists_are_the_same_value(self):
        assert canonical_json((1, 2, 3)) == canonical_json([1, 2, 3])

    def test_dict_keys_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_dataclass_tagged_with_qualified_name(self):
        encoded = canonical_encode(_Cell(name="x", size=1))
        assert encoded["__dataclass__"].endswith("_Cell")
        assert encoded["fields"] == {"name": "x", "size": 1}

    def test_same_fields_different_class_differ(self):
        assert canonical_json(_Cell("x", 1)) != canonical_json(_OtherCell("x", 1))

    def test_nested_cells_encode(self):
        cell = {"inner": _Cell("x", 1), "sizes": (8, 64)}
        assert canonical_json(cell) == canonical_json(
            {"sizes": [8, 64], "inner": _Cell("x", 1)}
        )

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_floats_rejected(self, bad):
        with pytest.raises(CellEncodingError, match="non-finite"):
            canonical_encode(bad)

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(CellEncodingError, match="not a string"):
            canonical_encode({1: "x"})

    def test_arbitrary_objects_rejected(self):
        with pytest.raises(CellEncodingError, match="cannot ride"):
            canonical_encode(object())
        with pytest.raises(CellEncodingError):
            canonical_encode(lambda: None)


class TestDeriveSeed:
    def test_golden_values(self):
        # pinned: changing the derivation silently would invalidate every
        # cached result and every recorded sweep
        assert derive_seed(20050404, canonical_json({"x": 1})) == 6567955936201504498
        assert derive_seed(0, canonical_json([1, 2, 3])) == 6369533259513052065
        assert derive_seed(1, canonical_json("cell")) == 4243958255278433387

    def test_pure_function_of_root_seed_and_cell(self):
        key = canonical_json({"cell": 1})
        assert derive_seed(7, key) == derive_seed(7, key)
        assert derive_seed(7, key) != derive_seed(8, key)
        assert derive_seed(7, key) != derive_seed(7, canonical_json({"cell": 2}))

    def test_fits_signed_64_bit(self):
        for i in range(64):
            assert 0 <= derive_seed(i, canonical_json(i)) < 1 << 63


class TestCodeFingerprint:
    def test_stable_and_hex(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        assert len(fp) == 64
        int(fp, 16)

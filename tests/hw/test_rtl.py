"""Equivalence proofs for the gate-level SL array.

The netlist must match the behavioural Table-2 model bit-for-bit on
arbitrary pre-scheduler outputs.  The suite also pins the scenario that
falsified the module's first draft: a cell cannot distinguish release
from a doomed establish by ``L·A·D`` alone — it must read its adjacent
configuration bit, because an earlier establish in the same wavefront can
raise a later candidate's ``A`` and ``D``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fabric.config import ConfigMatrix
from repro.hw.rtl import SLArrayNetlist, SLCellGates, sl_cell_logic
from repro.hw.synth import SchedulerAreaModel
from repro.sched.presched import compute_l
from repro.sched.slarray import wavefront_reference


class TestCellTruthTable:
    """The SL module's 16-row truth table (Table 2 plus the B input)."""

    @pytest.mark.parametrize(
        "l,b,a,d,expected",
        [
            # L=0: transparent, T=0, regardless of everything else
            (False, False, False, False, (False, False, False)),
            (False, False, True, True, (False, True, True)),
            (False, True, True, True, (False, True, True)),
            # L=1, B=1: release — outputs freed
            (True, True, True, True, (True, False, False)),
            # L=1, B=0, both ports free: establish — outputs busy
            (True, False, False, False, (True, True, True)),
            # L=1, B=0, a port busy: blocked, transparent
            (True, False, True, False, (False, True, False)),
            (True, False, False, True, (False, False, True)),
            # L=1, B=0, both busy (the wavefront-raised case): blocked,
            # NOT a release — this row is why the cell reads B
            (True, False, True, True, (False, True, True)),
        ],
    )
    def test_cell(self, l, b, a, d, expected):
        assert sl_cell_logic(l, b, a, d) == expected

    def test_gate_inventory(self):
        gates = SLCellGates()
        assert gates.total_gates == 11
        assert gates.lut4_estimate() == 3

    def test_gate_count_consistent_with_area_model(self):
        assert SchedulerAreaModel().le_per_sl_cell >= SLCellGates().lut4_estimate()


class TestNetlistBasics:
    def test_bad_size(self):
        with pytest.raises(ConfigurationError):
            SLArrayNetlist(0)

    def test_shape_checked(self):
        net = SLArrayNetlist(4)
        with pytest.raises(ConfigurationError):
            net.evaluate(
                np.zeros((3, 3), bool),
                np.zeros((4, 4), bool),
                np.zeros(4, bool),
                np.zeros(4, bool),
            )

    def test_gate_count_scales_quadratically(self):
        assert SLArrayNetlist(8).gate_count() == 4 * SLArrayNetlist(4).gate_count()


class TestWavefrontHazard:
    """The scenario that falsified the B-free cell design."""

    def test_earlier_establish_raises_later_candidates_signals(self):
        """(5,3) is established in the slot; L requests (4,2) and (4,3).
        The wavefront establishes (4,2), which raises row 4's D signal;
        cell (4,3) then sees A = 1 (from (5,3)) and D = 1 (from (4,2))
        with B = 0 — a B-blind release rule would toggle a phantom
        connection here.  The correct cell blocks it."""
        n = 8
        cfg = ConfigMatrix.from_pairs(n, [(5, 3)])
        l = np.zeros((n, n), dtype=bool)
        l[4, 2] = l[4, 3] = True
        t = SLArrayNetlist(n).evaluate(
            l, cfg.b, cfg.output_busy(), cfg.input_busy()
        )
        assert t[4, 2]  # the establish goes through
        assert not t[4, 3]  # the doomed candidate is blocked, not "released"

    def test_fabricated_l_is_harmless(self):
        """An L bit that Table 1 would never emit (establish onto busy
        ports) cannot corrupt the configuration: with B = 0 the cell
        refuses to release, and busy ports block the establish."""
        n = 4
        cfg = ConfigMatrix.from_pairs(n, [(0, 1), (2, 3)])
        l = np.zeros((n, n), dtype=bool)
        l[2, 1] = True
        t = SLArrayNetlist(n).evaluate(l, cfg.b, cfg.output_busy(), cfg.input_busy())
        assert not t.any()


@st.composite
def presched_inputs(draw, n=8):
    """A valid (slot config, R, B*, rotation) tuple via the real Table 1."""
    perm = draw(st.permutations(list(range(n))))
    keep = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    cfg = ConfigMatrix(n)
    for u, (v, k) in enumerate(zip(perm, keep)):
        if k:
            cfg.establish(u, v)
    r = np.array(
        draw(st.lists(st.lists(st.booleans(), min_size=n, max_size=n),
                      min_size=n, max_size=n)),
        dtype=bool,
    )
    extra = np.array(
        draw(st.lists(st.lists(st.booleans(), min_size=n, max_size=n),
                      min_size=n, max_size=n)),
        dtype=bool,
    )
    b_star = cfg.b | extra
    rotation = (draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1)))
    return cfg, r, b_star, rotation


@settings(max_examples=200, deadline=None)
@given(presched_inputs())
def test_netlist_equals_behavioral_model(case):
    """Under Table-1 inputs the gate netlist matches the SL-array oracle."""
    cfg, r, b_star, rotation = case
    pres = compute_l(r, cfg.b, b_star)
    ao, ai = cfg.output_busy(), cfg.input_busy()
    behavioral = wavefront_reference(pres.l, cfg.b, ao, ai, rotation)
    netlist_t = SLArrayNetlist(cfg.n).evaluate(pres.l, cfg.b, ao, ai, rotation)
    assert np.array_equal(behavioral.toggle_matrix(cfg.n), netlist_t)

"""Unit tests for the Table-3 hardware latency and area models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hw.gates import GateLibrary, or_tree_depth, sl_critical_cells
from repro.hw.synth import (
    ASIC_SPEEDUP,
    PAPER_SIZES,
    PAPER_TABLE3_NS,
    SchedulerAreaModel,
    asic_library,
    calibrate_library,
    scheduler_latency_table,
    stratix_library,
)


class TestGates:
    def test_or_tree_depth(self):
        assert or_tree_depth(1) == 0
        assert or_tree_depth(2) == 1
        assert or_tree_depth(128) == 7
        assert or_tree_depth(100) == 7  # ceil

    def test_or_tree_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            or_tree_depth(0)

    def test_critical_cells(self):
        assert sl_critical_cells(1) == 1
        assert sl_critical_cells(128) == 255

    def test_library_latency_formula(self):
        lib = GateLibrary("test", fixed_ps=1000, or_level_ps=100, sl_cell_ps=10)
        # 1000 + 2*100 + 7*10
        assert lib.scheduler_latency_ps(4) == 1000 + 2 * 100 + 7 * 10

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            GateLibrary("bad", -1, 0, 0)

    def test_scaled(self):
        lib = GateLibrary("t", 1000, 100, 10)
        fast = lib.scaled(5)
        assert fast.fixed_ps == 200
        assert fast.scheduler_latency_ps(8) * 5 == pytest.approx(
            lib.scheduler_latency_ps(8)
        )

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            GateLibrary("t", 1, 1, 1).scaled(0)


class TestCalibration:
    def test_reproduces_table3_within_3ns(self):
        lib = stratix_library()
        for n, paper_ns in PAPER_TABLE3_NS.items():
            model_ns = lib.scheduler_latency_ps(n) / 1000.0
            assert abs(model_ns - paper_ns) < 3.0, f"N={n}"

    def test_latency_monotone_in_n(self):
        lib = stratix_library()
        lats = [lib.scheduler_latency_ps(n) for n in (4, 8, 16, 32, 64, 128, 256)]
        assert lats == sorted(lats)

    def test_asic_is_5x(self):
        fpga = stratix_library()
        asic = asic_library()
        ratio = fpga.scheduler_latency_ps(128) / asic.scheduler_latency_ps(128)
        assert ratio == pytest.approx(ASIC_SPEEDUP)

    def test_asic_128_near_paper_80ns(self):
        """The paper picked 80 ns for the 128x128 ASIC scheduler."""
        asic_ns = asic_library().scheduler_latency_ps(128) / 1000.0
        assert 70.0 <= asic_ns <= 85.0

    def test_calibrate_needs_three_points(self):
        with pytest.raises(ConfigurationError):
            calibrate_library({4: 34, 8: 49})

    def test_calibrated_coefficients_nonnegative(self):
        lib = stratix_library()
        assert lib.fixed_ps >= 0 and lib.or_level_ps >= 0 and lib.sl_cell_ps >= 0

    def test_extrapolation_stays_linear(self):
        """Doubling N roughly doubles the wavefront term."""
        lib = stratix_library()
        t256 = lib.scheduler_latency_ps(256)
        t128 = lib.scheduler_latency_ps(128)
        wavefront = lib.sl_cell_ps * sl_critical_cells(128)
        assert t256 - t128 == pytest.approx(wavefront + lib.sl_cell_ps + lib.or_level_ps, rel=0.05)


class TestTableGeneration:
    def test_rows_cover_paper_sizes(self):
        rows = scheduler_latency_table()
        assert [r["n"] for r in rows] == list(PAPER_SIZES)
        for r in rows:
            assert abs(r["error_ns"]) < 3.0

    def test_asic_column_scaled(self):
        rows = scheduler_latency_table()
        for r in rows:
            assert r["asic_ns"] == pytest.approx(r["fpga_ns"] / 5.0)


class TestAreaModel:
    def test_scaling_quadratic_in_n(self):
        model = SchedulerAreaModel()
        small = model.logic_elements(16, 4)
        large = model.logic_elements(32, 4)
        assert 3.5 < large / small < 4.5

    def test_scaling_linear_in_k(self):
        model = SchedulerAreaModel()
        k4 = model.logic_elements(32, 4)
        k8 = model.logic_elements(32, 8)
        assert k8 > k4
        # only the configuration bits scale with K
        assert k8 - k4 == 4 * 32 * 32 * model.le_per_config_bit

    def test_utilization(self):
        model = SchedulerAreaModel()
        assert model.utilization(16, 4) < 1.0

    def test_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            SchedulerAreaModel().logic_elements(0, 4)

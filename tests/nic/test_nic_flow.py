"""Unit tests for the NIC model and the flow ledger."""

from __future__ import annotations

import pytest

from repro.errors import InvariantError
from repro.nic.flow import FlowLedger
from repro.nic.nic import Nic
from repro.params import PAPER_PARAMS
from repro.types import Message, MessageRecord


@pytest.fixture
def nic():
    return Nic(PAPER_PARAMS.with_overrides(n_ports=8), port=2)


class TestNic:
    def test_enqueue_and_request(self, nic):
        nic.enqueue(Message(src=2, dst=5, size=64))
        assert nic.request_vector()[5]
        assert not nic.idle

    def test_request_changes_edge_detection(self, nic):
        assert nic.request_changes() == []
        nic.enqueue(Message(src=2, dst=5, size=64))
        assert nic.request_changes() == [(5, True)]
        assert nic.request_changes() == []  # no further edges
        nic.voqs.drain(5, 64, 0, 1250)
        assert nic.request_changes() == [(5, False)]

    def test_receive_accounting(self, nic):
        rec = MessageRecord(
            src=0, dst=2, size=64, inject_ps=0, start_ps=10, done_ps=20, seq=0
        )
        nic.receive(rec)
        assert nic.bytes_received == 64
        assert nic.records == [rec]


class TestFlowLedger:
    def test_happy_path(self):
        led = FlowLedger(4)
        led.offer(0, 1, 100)
        led.send(0, 1, 60)
        led.send(0, 1, 40)
        led.deliver(0, 1, 100)
        led.assert_conserved()
        assert led.total_delivered == 100
        assert led.in_flight == 0

    def test_send_exceeding_offer(self):
        led = FlowLedger(4)
        led.offer(0, 1, 10)
        with pytest.raises(InvariantError):
            led.send(0, 1, 11)

    def test_deliver_exceeding_send(self):
        led = FlowLedger(4)
        led.offer(0, 1, 10)
        led.send(0, 1, 10)
        with pytest.raises(InvariantError):
            led.deliver(0, 1, 11)

    def test_unsent_bytes_detected(self):
        led = FlowLedger(4)
        led.offer(0, 1, 10)
        with pytest.raises(InvariantError):
            led.assert_conserved()

    def test_in_flight_detected(self):
        led = FlowLedger(4)
        led.offer(0, 1, 10)
        led.send(0, 1, 10)
        assert led.in_flight == 10
        with pytest.raises(InvariantError):
            led.assert_conserved()

"""Unit and property tests for the virtual output queues."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.nic.queues import VirtualOutputQueues
from repro.types import Message


def _voq(n=4, src=0):
    return VirtualOutputQueues(n, src)


class TestEnqueue:
    def test_basic(self):
        q = _voq()
        q.enqueue(Message(src=0, dst=1, size=64))
        assert q.bytes_pending[1] == 64
        assert q.has_traffic(1)
        assert not q.has_traffic(2)

    def test_wrong_source_rejected(self):
        q = _voq(src=0)
        with pytest.raises(ConfigurationError):
            q.enqueue(Message(src=1, dst=2, size=8))

    def test_bad_src_port(self):
        with pytest.raises(ConfigurationError):
            VirtualOutputQueues(4, 4)

    def test_request_vector(self):
        q = _voq()
        q.enqueue(Message(src=0, dst=1, size=8))
        q.enqueue(Message(src=0, dst=3, size=8))
        assert list(q.request_vector()) == [False, True, False, True]

    def test_fifo_order(self):
        q = _voq()
        a = Message(src=0, dst=1, size=8)
        b = Message(src=0, dst=1, size=8)
        q.enqueue(a)
        q.enqueue(b)
        assert q.head(1) is a
        assert q.depth(1) == 2


class TestDrain:
    def test_partial_drain(self):
        q = _voq()
        q.enqueue(Message(src=0, dst=1, size=100))
        moved, done = q.drain(1, 80, start_ps=0, byte_ps=1250)
        assert moved == 80
        assert done == []
        assert q.bytes_pending[1] == 20

    def test_complete_drain_records_times(self):
        q = _voq()
        q.enqueue(Message(src=0, dst=1, size=100))
        q.drain(1, 80, start_ps=0, byte_ps=1250)
        moved, done = q.drain(1, 80, start_ps=100_000, byte_ps=1250)
        assert moved == 20
        assert len(done) == 1
        dm = done[0]
        assert dm.start_ps == 0
        assert dm.finish_ps == 100_000 + 20 * 1250

    def test_multiple_messages_share_window(self):
        q = _voq()
        q.enqueue(Message(src=0, dst=1, size=30))
        q.enqueue(Message(src=0, dst=1, size=30))
        moved, done = q.drain(1, 80, start_ps=0, byte_ps=1250)
        assert moved == 60
        assert len(done) == 2
        assert done[0].finish_ps == 30 * 1250
        assert done[1].start_ps == 30 * 1250
        assert done[1].finish_ps == 60 * 1250

    def test_future_message_not_drained(self):
        q = _voq()
        q.enqueue(Message(src=0, dst=1, size=8, inject_ps=999_999))
        moved, done = q.drain(1, 80, start_ps=0, byte_ps=1250)
        assert moved == 0 and done == []

    def test_negative_budget_rejected(self):
        q = _voq()
        with pytest.raises(ConfigurationError):
            q.drain(1, -1, 0)

    def test_zero_budget(self):
        q = _voq()
        q.enqueue(Message(src=0, dst=1, size=8))
        moved, done = q.drain(1, 0, 0)
        assert moved == 0 and done == []

    def test_empty_queue(self):
        moved, done = _voq().drain(1, 80, 0)
        assert moved == 0 and done == []


class TestAccounting:
    def test_total_pending(self):
        q = _voq()
        q.enqueue(Message(src=0, dst=1, size=10))
        q.enqueue(Message(src=0, dst=2, size=20))
        assert q.total_pending == 30
        assert not q.is_empty

    def test_enqueued_bytes_monotone(self):
        q = _voq()
        q.enqueue(Message(src=0, dst=1, size=10))
        q.drain(1, 100, 0, 1250)
        assert q.enqueued_bytes == 10

    def test_check_invariants(self):
        q = _voq()
        q.enqueue(Message(src=0, dst=1, size=64))
        q.drain(1, 10, 0, 1250)
        q.check_invariants()


@given(
    st.lists(st.tuples(st.integers(1, 3), st.integers(1, 200)), max_size=20),
    st.lists(st.integers(1, 100), max_size=40),
)
def test_property_byte_conservation(messages, drains):
    """Bytes drained + bytes pending == bytes enqueued, always."""
    q = _voq(4, 0)
    for dst, size in messages:
        q.enqueue(Message(src=0, dst=dst, size=size))
    drained = 0
    t = 0
    for budget in drains:
        for dst in (1, 2, 3):
            moved, _ = q.drain(dst, budget, t, 1250)
            drained += moved
        t += 1_000_000
        q.check_invariants()
    assert drained + q.total_pending == q.enqueued_bytes

"""Tests for the scheduler bake-off harness (``repro compare``)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.compare import (
    COMPARE_SCHEMES,
    CompareCell,
    coverage_rows,
    guarded_efficiency,
    run_compare,
    run_compare_cell,
)
from repro.experiments.common import DEFAULT_SEED
from repro.metrics.efficiency import efficiency_from_bound
from repro.params import PAPER_PARAMS

PARAMS = PAPER_PARAMS.with_overrides(n_ports=16)


class TestGuardedEfficiency:
    def test_matches_strict_validator_on_real_cells(self):
        assert guarded_efficiency(50, 100) == efficiency_from_bound(50, 100)

    def test_empty_cell_yields_zero_not_crash(self):
        """Regression: an empty traffic realisation (bound 0, makespan 0)
        must produce a zero report row, where the strict validator raises."""
        assert guarded_efficiency(0, 0) == 0.0
        assert guarded_efficiency(0, 100) == 0.0
        assert guarded_efficiency(100, 0) == 0.0
        with pytest.raises(ConfigurationError):
            efficiency_from_bound(0, 0)


class TestCells:
    def test_every_scheme_runs_one_cell(self):
        for scheme in COMPARE_SCHEMES:
            point = run_compare_cell(
                CompareCell(
                    pattern="scatter",
                    scheme=scheme,
                    size_bytes=64,
                    params=PARAMS,
                    k=4,
                    mesh_rounds=4,
                    nn_rounds=16,
                    seed=DEFAULT_SEED,
                )
            )
            assert 0.0 < point.efficiency <= 1.0, scheme
            assert point.scheme == scheme


class TestDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_compare(
            params=PARAMS,
            sizes=(64,),
            patterns=("scatter", "two-phase"),
            cache=False,
            jobs=1,
        )

    def test_grid_shape(self, result):
        assert len(result.points) == 2 * len(COMPARE_SCHEMES)
        assert set(result.series) == {"scatter", "two-phase"}

    def test_ranking_sorted_and_complete(self, result):
        ranking = result.ranking()
        assert [s for s, _ in ranking] != []
        assert sorted(s for s, _ in ranking) == sorted(COMPARE_SCHEMES)
        means = [m for _, m in ranking]
        assert means == sorted(means, reverse=True)

    def test_csv_covers_grid(self, result):
        lines = result.csv().strip().split("\n")
        assert lines[0].startswith("pattern,scheme,bytes,")
        assert len(lines) == 1 + len(result.points)

    def test_coverage_rows_present(self, result):
        names = [r.demand_name for r in result.coverage]
        assert names == ["scatter", "two-phase", "skewed"]
        for row in result.coverage:
            assert 0.0 <= row.coloring_coverage <= 1.0
            assert 0.0 <= row.solstice_coverage <= 1.0
            assert row.budget == 4

    def test_solstice_wins_on_skewed_demand(self, result):
        """The acceptance bar: on the seeded skewed matrix the Solstice
        schedule covers at least as much demand as plain colouring."""
        skewed = result.coverage[-1]
        assert skewed.demand_name == "skewed"
        assert skewed.solstice_coverage >= skewed.coloring_coverage

    def test_format_and_markdown(self, result):
        text = result.format()
        assert "ranking" in text
        assert "coverage" in text
        md = result.markdown()
        assert md.startswith("# Scheduler bake-off")
        assert "| rank | scheme |" in md
        for scheme in COMPARE_SCHEMES:
            assert scheme in md

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            run_compare(params=PARAMS, patterns=("nope",), cache=False)
        with pytest.raises(KeyError):
            run_compare(params=PARAMS, schemes=("nope",), cache=False)


class TestDeterminism:
    def test_jobs_invariant_and_repeatable(self):
        """The CI contract: byte-identical CSV across invocations and
        across worker counts."""
        kwargs = dict(
            params=PARAMS,
            sizes=(64,),
            patterns=("random-mesh",),
            schemes=("dynamic-tdm", "islip", "solstice-tdm"),
            cache=False,
        )
        serial = run_compare(jobs=1, **kwargs)
        again = run_compare(jobs=1, **kwargs)
        fanned = run_compare(jobs=2, **kwargs)
        assert serial.csv() == again.csv() == fanned.csv()
        assert serial.points == fanned.points


class TestCoverageRows:
    def test_pure_function_of_inputs(self):
        a = coverage_rows(PARAMS, k=4, seed=11)
        b = coverage_rows(PARAMS, k=4, seed=11)
        assert a == b

    def test_budget_monotone(self):
        """More register-file depth never covers less."""
        shallow = {r.demand_name: r.solstice_coverage for r in coverage_rows(PARAMS, k=2)}
        deep = {r.demand_name: r.solstice_coverage for r in coverage_rows(PARAMS, k=8)}
        for name, cov in shallow.items():
            assert deep[name] >= cov

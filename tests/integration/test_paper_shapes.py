"""Integration tests: the paper's narrated result shapes at reduced scale.

These run the full simulation stack on a 32-port system (large enough for
the contention effects, small enough for CI) and assert the *orderings*
Section 5 reports.  Absolute values live in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import figure4_schemes, measure
from repro.experiments.figure5 import run_figure5
from repro.params import PAPER_PARAMS
from repro.traffic.alltoall import AllToAllPattern
from repro.traffic.mesh import OrderedMeshPattern, RandomMeshPattern
from repro.traffic.scatter import ScatterPattern
from repro.traffic.twophase import TwoPhasePattern

N = 32
PARAMS = PAPER_PARAMS.with_overrides(n_ports=N)


def _eff(pattern, scheme: str) -> float:
    factory = figure4_schemes(PARAMS)[scheme]
    return measure(pattern, factory()).efficiency


class TestScatterShape:
    """F4a: the 32 -> 64 byte jump, the plateau, preload ~ dynamic."""

    def test_jump_between_32_and_64(self):
        e32 = _eff(ScatterPattern(N, 32), "preload")
        e64 = _eff(ScatterPattern(N, 64), "preload")
        assert e64 > 1.5 * e32

    def test_plateau_after_64(self):
        e64 = _eff(ScatterPattern(N, 64), "preload")
        e2048 = _eff(ScatterPattern(N, 2048), "preload")
        assert e2048 >= e64 * 0.95  # flat or gently rising, no collapse

    def test_preload_similar_to_dynamic(self):
        for size in (64, 512):
            pre = _eff(ScatterPattern(N, size), "preload")
            dyn = _eff(ScatterPattern(N, size), "dynamic-tdm")
            assert abs(pre - dyn) / pre < 0.25

    def test_tdm_beats_wormhole_at_moderate_sizes(self):
        assert _eff(ScatterPattern(N, 64), "preload") > _eff(
            ScatterPattern(N, 64), "wormhole"
        )


class TestRandomMeshShape:
    """F4b: TDM variants beat wormhole and circuit; circuit grows with size."""

    @pytest.mark.parametrize("size", [64, 256])
    def test_tdm_beats_baselines(self, size):
        worm = _eff(RandomMeshPattern(N, size, rounds=4), "wormhole")
        circ = _eff(RandomMeshPattern(N, size, rounds=4), "circuit")
        dyn = _eff(RandomMeshPattern(N, size, rounds=4), "dynamic-tdm")
        pre = _eff(RandomMeshPattern(N, size, rounds=4), "preload")
        assert dyn > worm and dyn > circ
        assert pre > worm and pre > circ

    def test_circuit_improves_with_size(self):
        small = _eff(RandomMeshPattern(N, 64, rounds=2), "circuit")
        large = _eff(RandomMeshPattern(N, 2048, rounds=2), "circuit")
        assert large > 1.5 * small


class TestOrderedMeshShape:
    """F4c: preload wins on the predictable pattern."""

    @pytest.mark.parametrize("size", [64, 256])
    def test_preload_best(self, size):
        pattern = lambda: OrderedMeshPattern(N, size, rounds=4)
        pre = _eff(pattern(), "preload")
        assert pre > _eff(pattern(), "dynamic-tdm")
        assert pre > _eff(pattern(), "wormhole")
        assert pre > _eff(pattern(), "circuit")


class TestTwoPhaseShape:
    """F4d: preload best; dynamic TDM falls below wormhole."""

    def test_preload_best_and_dynamic_below_wormhole(self):
        # keep the paper's ~2:1 all-to-all : mesh traffic ratio at N=32
        # (127 vs 64 messages per node at N=128 -> 31 vs 16 here)
        pattern = lambda: TwoPhasePattern(N, 64, nn_rounds=4)
        pre = _eff(pattern(), "preload")
        dyn = _eff(pattern(), "dynamic-tdm")
        worm = _eff(pattern(), "wormhole")
        assert pre > worm
        assert pre > dyn
        assert dyn < worm

    def test_alltoall_is_the_culprit(self):
        """The all-to-all phase alone shows the same inversion."""
        pattern = lambda: AllToAllPattern(N, 64)
        dyn = _eff(pattern(), "dynamic-tdm")
        worm = _eff(pattern(), "wormhole")
        pre = _eff(pattern(), "preload")
        assert dyn < worm < pre


class TestFigure5Shape:
    """F5: hybrid preload pays off; crossover by 85 % determinism."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return run_figure5(
            params=PARAMS,
            determinism=(0.5, 0.85, 1.0),
            k_preloads=(0, 1, 2),
            messages_per_node=16,
        )

    def test_one_preload_competitive_at_low_determinism(self, sweep):
        k0 = sweep.efficiency(0, 0.5)
        k1 = sweep.efficiency(1, 0.5)
        assert k1 > k0 * 0.9  # within a whisker, per the paper's claim

    def test_two_preload_wins_at_85(self, sweep):
        k1 = sweep.efficiency(1, 0.85)
        k2 = sweep.efficiency(2, 0.85)
        assert k2 > k1 * 1.05

    def test_preload_dominates_at_full_determinism(self, sweep):
        k0 = sweep.efficiency(0, 1.0)
        k2 = sweep.efficiency(2, 1.0)
        assert k2 > k0 * 1.2


class TestCrossSchemeInvariants:
    """Every scheme delivers every byte with efficiency in (0, 1]."""

    @pytest.mark.parametrize("scheme", ["wormhole", "circuit", "dynamic-tdm", "preload"])
    @pytest.mark.parametrize("size", [8, 80, 2048])
    def test_efficiency_in_unit_interval(self, scheme, size):
        point = measure(
            ScatterPattern(N, size), figure4_schemes(PARAMS)[scheme]()
        )
        assert 0.0 < point.efficiency <= 1.0

    @pytest.mark.parametrize("scheme", ["wormhole", "circuit", "dynamic-tdm", "preload"])
    def test_total_bytes_match(self, scheme):
        pattern = OrderedMeshPattern(N, 96, rounds=2)
        point = measure(pattern, figure4_schemes(PARAMS)[scheme]())
        assert point.total_bytes == N * 4 * 2 * 96

"""Failure injection: invariant checkers and fault campaigns.

Two families of tests share this module.  The first deliberately breaks
internal state (as a bug would) and asserts that the library's
self-checks — which the simulations run at phase boundaries — refuse to
continue silently.  The second runs real fault-injection campaigns
(:mod:`repro.faults`) against every switching scheme and asserts the
campaign contract: every injected message is delivered exactly once or
explicitly dropped, campaigns are bit-deterministic, and a zero-rate
campaign reproduces the healthy run exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvariantError, SimulationError
from repro.fabric.config import ConfigMatrix
from repro.fabric.registers import ConfigRegisterFile
from repro.faults import FaultInjector, FaultSchedule
from repro.metrics.degradation import degradation_report
from repro.metrics.serialization import result_from_dict, result_to_dict
from repro.networks.base import BaseNetwork, STRICT_ENV_VAR
from repro.networks.circuit import CircuitNetwork
from repro.networks.tdm import TdmNetwork
from repro.networks.wormhole import WormholeNetwork
from repro.nic.queues import VirtualOutputQueues
from repro.params import PAPER_PARAMS
from repro.sched.slarray import wavefront_reference
from repro.sim.clock import us
from repro.sim.rng import RngStreams
from repro.traffic.base import TrafficPhase, assign_seq
from repro.traffic.hybrid import HybridPattern
from repro.types import Message

SEED = 1337

#: every switching scheme, as fresh factories taking an optional injector
SCHEMES = {
    "wormhole": lambda params, inj: WormholeNetwork(params, faults=inj),
    "circuit": lambda params, inj: CircuitNetwork(params, faults=inj),
    "dynamic-tdm": lambda params, inj: TdmNetwork(
        params, k=4, mode="dynamic", injection_window=4, faults=inj
    ),
    "preload": lambda params, inj: TdmNetwork(
        params, k=4, mode="preload", injection_window=4, faults=inj
    ),
}


def _phases(params):
    """A fully static workload every scheme (including preload) can serve."""
    pattern = HybridPattern(
        params.n_ports, 512, determinism=1.0, messages_per_node=4, n_static=2
    )
    return pattern.phases(RngStreams(SEED))


def _storm(params, rate_per_us: float, seed: int = SEED) -> FaultSchedule:
    return FaultSchedule.generate(
        seed=seed,
        rate_per_us=rate_per_us,
        horizon_ps=us(100),
        n_ports=params.n_ports,
        k=4,
    )


def _run(params, scheme: str, rate_per_us: float, seed: int = SEED):
    inj = FaultInjector(_storm(params, rate_per_us, seed))
    net: BaseNetwork = SCHEMES[scheme](params, inj)
    net.max_wall_s = 120.0
    return net.run(_phases(params))


class TestConfigCorruption:
    def test_dense_matrix_desync_detected(self):
        cfg = ConfigMatrix.from_pairs(4, [(0, 1)])
        cfg.b[2, 3] = True  # bypassing establish()
        with pytest.raises(InvariantError):
            cfg.check_invariants()

    def test_occupancy_vector_desync_detected(self):
        cfg = ConfigMatrix.from_pairs(4, [(0, 1)])
        cfg.row_to_col[0] = 2  # vector contradicts the matrix
        with pytest.raises(InvariantError):
            cfg.check_invariants()

    def test_double_booking_detected(self):
        cfg = ConfigMatrix(4)
        cfg.b[0, 1] = cfg.b[0, 2] = True  # crossbar violation
        with pytest.raises(InvariantError):
            cfg.check_invariants()

    def test_size_counter_desync_detected(self):
        cfg = ConfigMatrix.from_pairs(4, [(0, 1)])
        cfg._size = 5
        with pytest.raises(InvariantError):
            cfg.check_invariants()


class TestRegisterFileCorruption:
    def test_bstar_count_desync_detected(self):
        regs = ConfigRegisterFile(4, 2)
        regs.establish(0, 1, 2)
        regs._counts[1, 2] = 0  # B* contradicts the slots
        with pytest.raises(InvariantError):
            regs.check_invariants()

    def test_slot_bypass_detected(self):
        regs = ConfigRegisterFile(4, 2)
        regs.slots[0].establish(0, 1)  # bypassing the register file API
        with pytest.raises(InvariantError):
            regs.check_invariants()


class TestQueueCorruption:
    def test_byte_counter_desync_detected(self):
        voq = VirtualOutputQueues(4, 0)
        voq.enqueue(Message(src=0, dst=1, size=64))
        voq.bytes_pending[1] = 10
        with pytest.raises(InvariantError):
            voq.check_invariants()


class TestSchedulerCorruption:
    def test_release_cell_with_free_ports_rejected(self):
        """Table 2's release case demands A = D = 1; a fabricated L matrix
        claiming a release on an empty slot is an invariant violation."""
        n = 4
        l = np.zeros((n, n), dtype=bool)
        l[1, 2] = True
        b_s = np.zeros((n, n), dtype=bool)
        b_s[1, 2] = True  # connection "exists" ...
        ao = np.zeros(n, dtype=bool)  # ... but the ports read as free
        ai = np.zeros(n, dtype=bool)
        with pytest.raises(InvariantError):
            wavefront_reference(l, b_s, ao, ai)


class TestRunawayProtection:
    def test_engine_max_events_trips(self):
        """A network whose clocks never stop is killed by the event cap."""
        from repro.sim.engine import Simulator

        sim = Simulator()

        def forever():
            sim.schedule(1, forever)

        sim.schedule(0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=1000)

    def test_lost_delivery_detected(self, monkeypatch):
        """If deliveries stop reaching the ledger, conservation fails."""
        from repro.nic.flow import FlowLedger

        params = PAPER_PARAMS.with_overrides(n_ports=4)
        net = TdmNetwork(params, k=2, mode="dynamic")
        phase = TrafficPhase("t", [Message(src=0, dst=1, size=64)])
        assign_seq([phase])

        monkeypatch.setattr(FlowLedger, "deliver", lambda self, *a: None)
        with pytest.raises(InvariantError):
            net.run([phase])


PARAMS8 = PAPER_PARAMS.with_overrides(n_ports=8)


class TestConservationUnderFaults:
    """Campaign contract: delivered exactly once, or explicitly dropped."""

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    @pytest.mark.parametrize("rate", [1.0, 4.0, 16.0])
    def test_every_message_accounted_for(self, scheme, rate):
        phases = _phases(PARAMS8)
        injected = {m.seq for p in phases for m in p.messages}
        result = _run(PARAMS8, scheme, rate)
        delivered = [r.seq for r in result.records]
        dropped = [d.seq for d in result.drops]
        # no duplicates on either side, no overlap, nothing missing
        assert len(delivered) == len(set(delivered))
        assert len(dropped) == len(set(dropped))
        assert set(delivered) & set(dropped) == set()
        assert set(delivered) | set(dropped) == injected
        assert degradation_report(result).duplicated == 0

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_heavy_storm_still_terminates_and_balances(self, scheme):
        """A brutal storm (64 faults/us) must still end in a balanced ledger.

        ``BaseNetwork.run`` asserts byte conservation at every phase
        boundary, so completing at all is the assertion.
        """
        phases = _phases(PARAMS8)
        injected = sum(len(p.messages) for p in phases)
        result = _run(PARAMS8, scheme, 64.0)
        assert len(result.records) + len(result.drops) == injected
        # a storm this heavy must actually draw blood somewhere
        assert any(
            k.startswith("fault_applied_") for k in result.counters
        )


class TestCampaignDeterminism:
    """Same (seed, rate, scheme) -> bit-identical timelines and metrics."""

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_repeat_run_bit_identical(self, scheme):
        a = _run(PARAMS8, scheme, 8.0)
        b = _run(PARAMS8, scheme, 8.0)
        assert a.makespan_ps == b.makespan_ps
        assert a.records == b.records
        assert a.drops == b.drops
        assert a.recovery_ps == b.recovery_ps
        assert a.counters == b.counters

    def test_different_fault_seed_differs(self):
        a = _run(PARAMS8, "dynamic-tdm", 8.0, seed=1)
        b = _run(PARAMS8, "dynamic-tdm", 8.0, seed=2)
        assert a.counters != b.counters or a.makespan_ps != b.makespan_ps


class TestZeroRateEquivalence:
    """An armed-but-empty campaign must not change a single bit."""

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_empty_schedule_reproduces_healthy_run(self, scheme):
        healthy = SCHEMES[scheme](PARAMS8, None).run(_phases(PARAMS8))
        faulted = _run(PARAMS8, scheme, 0.0)
        assert faulted.makespan_ps == healthy.makespan_ps
        assert faulted.records == healthy.records
        assert faulted.counters == healthy.counters
        assert faulted.drops == [] and faulted.recovery_ps == []
        assert [p.end_ps for p in faulted.phases] == [
            p.end_ps for p in healthy.phases
        ]


class TestFaultedResultRoundTrip:
    def test_serialization_preserves_drops_and_recoveries(self):
        result = _run(PARAMS8, "dynamic-tdm", 16.0)
        back = result_from_dict(result_to_dict(result))
        assert back.drops == result.drops
        assert back.recovery_ps == result.recovery_ps
        assert back.records == result.records

    def test_old_format_without_fault_fields_loads(self):
        result = SCHEMES["wormhole"](PARAMS8, None).run(_phases(PARAMS8))
        data = result_to_dict(result)
        del data["drops"], data["recovery_ps"]
        back = result_from_dict(data)
        assert back.drops == [] and back.recovery_ps == []


class TestStrictMode:
    def test_strict_healthy_run_passes(self):
        net = TdmNetwork(PARAMS8, k=4, mode="dynamic", strict=True)
        assert net.strict
        net.run(_phases(PARAMS8))

    def test_env_var_enables_strict(self, monkeypatch):
        monkeypatch.setenv(STRICT_ENV_VAR, "1")
        assert TdmNetwork(PARAMS8, k=4, mode="dynamic").strict
        monkeypatch.setenv(STRICT_ENV_VAR, "0")
        assert not TdmNetwork(PARAMS8, k=4, mode="dynamic").strict

    def test_explicit_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv(STRICT_ENV_VAR, "1")
        assert not TdmNetwork(PARAMS8, k=4, mode="dynamic", strict=False).strict

    def test_strict_campaign_across_schemes(self):
        """Strict invariant sweeps stay green through a real storm."""
        for scheme in sorted(SCHEMES):
            inj = FaultInjector(_storm(PARAMS8, 8.0))
            net = SCHEMES[scheme](PARAMS8, inj)
            net.strict = True
            net.run(_phases(PARAMS8))


class TestWallClockWatchdog:
    def test_engine_watchdog_trips_on_spin(self):
        from repro.sim.engine import Simulator

        sim = Simulator()

        def forever():
            sim.schedule(1, forever)

        sim.schedule(0, forever)
        with pytest.raises(SimulationError, match="watchdog"):
            sim.run(max_wall_s=0.05)

    def test_network_passes_watchdog_through(self, monkeypatch):
        """A network stuck in a clock loop dies by wall clock, not hang."""
        net = TdmNetwork(PARAMS8, k=4, mode="dynamic", max_wall_s=0.1)
        assert net.max_wall_s == 0.1
        # sabotage delivery so the phase never completes and clocks spin
        monkeypatch.setattr(TdmNetwork, "_deliver", lambda self, record: None)
        with pytest.raises(SimulationError, match="watchdog"):
            net.run(_phases(PARAMS8))

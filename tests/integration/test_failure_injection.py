"""Failure injection: the invariant checkers catch corrupted state.

These tests deliberately break internal state (as a bug would) and assert
that the library's self-checks — which the simulations run at phase
boundaries — refuse to continue silently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvariantError, SimulationError
from repro.fabric.config import ConfigMatrix
from repro.fabric.registers import ConfigRegisterFile
from repro.networks.tdm import TdmNetwork
from repro.nic.queues import VirtualOutputQueues
from repro.params import PAPER_PARAMS
from repro.sched.slarray import wavefront_reference
from repro.traffic.base import TrafficPhase, assign_seq
from repro.types import Message


class TestConfigCorruption:
    def test_dense_matrix_desync_detected(self):
        cfg = ConfigMatrix.from_pairs(4, [(0, 1)])
        cfg.b[2, 3] = True  # bypassing establish()
        with pytest.raises(InvariantError):
            cfg.check_invariants()

    def test_occupancy_vector_desync_detected(self):
        cfg = ConfigMatrix.from_pairs(4, [(0, 1)])
        cfg.row_to_col[0] = 2  # vector contradicts the matrix
        with pytest.raises(InvariantError):
            cfg.check_invariants()

    def test_double_booking_detected(self):
        cfg = ConfigMatrix(4)
        cfg.b[0, 1] = cfg.b[0, 2] = True  # crossbar violation
        with pytest.raises(InvariantError):
            cfg.check_invariants()

    def test_size_counter_desync_detected(self):
        cfg = ConfigMatrix.from_pairs(4, [(0, 1)])
        cfg._size = 5
        with pytest.raises(InvariantError):
            cfg.check_invariants()


class TestRegisterFileCorruption:
    def test_bstar_count_desync_detected(self):
        regs = ConfigRegisterFile(4, 2)
        regs.establish(0, 1, 2)
        regs._counts[1, 2] = 0  # B* contradicts the slots
        with pytest.raises(InvariantError):
            regs.check_invariants()

    def test_slot_bypass_detected(self):
        regs = ConfigRegisterFile(4, 2)
        regs.slots[0].establish(0, 1)  # bypassing the register file API
        with pytest.raises(InvariantError):
            regs.check_invariants()


class TestQueueCorruption:
    def test_byte_counter_desync_detected(self):
        voq = VirtualOutputQueues(4, 0)
        voq.enqueue(Message(src=0, dst=1, size=64))
        voq.bytes_pending[1] = 10
        with pytest.raises(InvariantError):
            voq.check_invariants()


class TestSchedulerCorruption:
    def test_release_cell_with_free_ports_rejected(self):
        """Table 2's release case demands A = D = 1; a fabricated L matrix
        claiming a release on an empty slot is an invariant violation."""
        n = 4
        l = np.zeros((n, n), dtype=bool)
        l[1, 2] = True
        b_s = np.zeros((n, n), dtype=bool)
        b_s[1, 2] = True  # connection "exists" ...
        ao = np.zeros(n, dtype=bool)  # ... but the ports read as free
        ai = np.zeros(n, dtype=bool)
        with pytest.raises(InvariantError):
            wavefront_reference(l, b_s, ao, ai)


class TestRunawayProtection:
    def test_engine_max_events_trips(self):
        """A network whose clocks never stop is killed by the event cap."""
        from repro.sim.engine import Simulator

        sim = Simulator()

        def forever():
            sim.schedule(1, forever)

        sim.schedule(0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=1000)

    def test_lost_delivery_detected(self, monkeypatch):
        """If deliveries stop reaching the ledger, conservation fails."""
        from repro.nic.flow import FlowLedger

        params = PAPER_PARAMS.with_overrides(n_ports=4)
        net = TdmNetwork(params, k=2, mode="dynamic")
        phase = TrafficPhase("t", [Message(src=0, dst=1, size=64)])
        assign_seq([phase])

        monkeypatch.setattr(FlowLedger, "deliver", lambda self, *a: None)
        with pytest.raises(InvariantError):
            net.run([phase])

"""The docs/extending.md recipes, executed.

Each class here is copied from the cookbook; if the public API drifts,
these tests break before the documentation lies.
"""

from __future__ import annotations

import pytest

from repro import PAPER_PARAMS, RunSpec, build_network, measure
from repro.predict import Predictor
from repro.traffic import TrafficPattern, TrafficPhase
from repro.types import Connection

PARAMS = PAPER_PARAMS.with_overrides(n_ports=16)


class RingPattern(TrafficPattern):
    """Every node streams to its ring successor for `rounds` rounds."""

    name = "ring"

    def __init__(self, n_ports, size_bytes, rounds=4):
        super().__init__(n_ports, size_bytes)
        self.rounds = rounds

    def build_phases(self, rng):
        n = self.n_ports
        msgs = [
            self._msg(u, (u + 1) % n)
            for _ in range(self.rounds)
            for u in range(n)
        ]
        static = {Connection(u, (u + 1) % n) for u in range(n)}
        return [TrafficPhase("ring", msgs, static_conns=static)]


class SecondChancePredictor(Predictor):
    """Hold every drained connection once; evict on the second drain."""

    def __init__(self):
        self._chances = {}

    def on_use(self, u, v, t_ps):
        self._chances.pop((u, v), None)

    def on_empty(self, u, v, t_ps):
        first = (u, v) not in self._chances
        self._chances[(u, v)] = not first
        return first

    def expired(self, t_ps):
        out = [
            Connection(u, v) for (u, v), used in self._chances.items() if used
        ]
        for c in out:
            del self._chances[(c.src, c.dst)]
        return out


class EvenOddFabric:
    """A contrived fabric that cannot cross the even/odd partition."""

    def is_realizable(self, config):
        return all((u % 2) == (v % 2) for u, v in config.connections())


class TestCustomPattern:
    def test_runs_and_measures(self):
        net = build_network(RunSpec("dynamic-tdm", PARAMS, k=2, injection_window=None))
        point = measure(RingPattern(16, 256), net, seed=7)
        assert 0 < point.efficiency <= 1
        assert point.total_bytes == 16 * 4 * 256

    def test_preloadable(self):
        point = measure(
            RingPattern(16, 256),
            build_network(RunSpec("preload", PARAMS, k=2, injection_window=None)),
            seed=7,
        )
        assert point.counters.get("establishes", 0) == 0

    def test_ring_is_single_configuration(self):
        from repro.compiled import StaticPattern

        phase = RingPattern(16, 64).phases(__import__("repro.sim.rng", fromlist=["RngStreams"]).RngStreams(0))[0]
        assert StaticPattern(16, phase.static_conns).degree == 1


class TestCustomPredictor:
    def test_predictor_drives_latches(self):
        from repro.sim.rng import RngStreams
        from repro.types import Message
        from repro.traffic.base import assign_seq

        # two bursts to the same destination with a gap; the second-chance
        # policy holds across the first drain, so only one establishment
        msgs = [
            Message(src=0, dst=1, size=64, inject_ps=0),
            Message(src=0, dst=1, size=64, inject_ps=2_000_000),
        ]
        phase = TrafficPhase("bursts", msgs)
        assign_seq([phase])
        net = build_network(
            RunSpec(
                "dynamic-tdm",
                PARAMS,
                k=2,
                injection_window=None,
                options={"predictor": SecondChancePredictor()},
            )
        )
        result = net.run([phase])
        assert len(result.records) == 2
        assert result.counters["establishes"] == 1


class TestCustomFabric:
    def test_partition_respected(self):
        from repro.sim.rng import RngStreams
        from repro.traffic.base import assign_seq
        from repro.types import Message

        msgs = [
            Message(src=0, dst=2, size=64),  # even -> even: allowed
            Message(src=1, dst=3, size=64),  # odd -> odd: allowed
        ]
        phase = TrafficPhase("parity", msgs)
        assign_seq([phase])
        net = build_network(
            RunSpec(
                "dynamic-tdm",
                PARAMS,
                k=2,
                injection_window=None,
                options={"fabric_constraint": EvenOddFabric()},
            )
        )
        result = net.run([phase])
        assert len(result.records) == 2
        assert result.counters.get("blocked_by_fabric", 0) == 0

    def test_cross_partition_traffic_stalls_loudly(self, monkeypatch):
        """Traffic the fabric can never carry trips the event cap rather
        than hanging silently."""
        import repro.networks.base as base_module
        from repro.errors import SimulationError
        from repro.traffic.base import assign_seq
        from repro.types import Message

        monkeypatch.setattr(base_module, "MAX_EVENTS_PER_PHASE", 5_000)
        phase = TrafficPhase("impossible", [Message(src=0, dst=1, size=64)])
        assign_seq([phase])
        small = PAPER_PARAMS.with_overrides(n_ports=4)
        net = build_network(
            RunSpec(
                "dynamic-tdm",
                small,
                k=1,
                injection_window=None,
                options={"fabric_constraint": EvenOddFabric()},
            )
        )
        with pytest.raises(SimulationError):
            net.run([phase])

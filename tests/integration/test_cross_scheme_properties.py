"""Property tests that hold across every switching scheme.

Hypothesis generates small random workloads; each must satisfy, on every
network model:

* **byte conservation** — every offered byte is sent and delivered
  exactly once (enforced internally by the FlowLedger; a run that
  violates it raises);
* **completeness** — one delivery record per message;
* **bounds** — makespan at least the bottleneck lower bound (efficiency
  in (0, 1]);
* **causality** — per record, inject <= start <= done;
* **determinism** — the same workload and configuration produce the same
  makespan when re-run.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.metrics.efficiency import run_lower_bound_ps
from repro.networks.circuit import CircuitNetwork
from repro.networks.tdm import TdmNetwork
from repro.networks.wormhole import WormholeNetwork
from repro.params import PAPER_PARAMS
from repro.traffic.base import TrafficPhase, assign_seq
from repro.types import Message

N = 8
PARAMS = PAPER_PARAMS.with_overrides(n_ports=N)


@st.composite
def workloads(draw):
    """A small random phase: up to 24 messages, sizes 1..600 bytes."""
    n_msgs = draw(st.integers(1, 24))
    msgs = []
    for _ in range(n_msgs):
        src = draw(st.integers(0, N - 1))
        dst = draw(st.integers(0, N - 1))
        if dst == src:
            dst = (dst + 1) % N
        size = draw(st.integers(1, 600))
        msgs.append(Message(src=src, dst=dst, size=size))
    phase = TrafficPhase("prop", msgs)
    assign_seq([phase])
    return phase


def _network_factories():
    return {
        "wormhole": lambda: WormholeNetwork(PARAMS),
        "circuit": lambda: CircuitNetwork(PARAMS),
        "tdm-dynamic": lambda: TdmNetwork(PARAMS, k=3, mode="dynamic"),
        "tdm-windowed": lambda: TdmNetwork(
            PARAMS, k=3, mode="dynamic", injection_window=2
        ),
    }


def _clone(phase: TrafficPhase) -> TrafficPhase:
    msgs = [
        Message(src=m.src, dst=m.dst, size=m.size, inject_ps=0, seq=m.seq)
        for m in phase.messages
    ]
    return TrafficPhase(phase.name, msgs)


@pytest.mark.parametrize("scheme", sorted(_network_factories()))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(phase=workloads())
def test_conservation_completeness_bounds(scheme, phase):
    factory = _network_factories()[scheme]
    run_phase = _clone(phase)
    bound = run_lower_bound_ps([run_phase], PARAMS)
    net = factory()
    result = net.run([run_phase])
    # completeness
    assert len(result.records) == len(phase.messages)
    # conservation (the ledger also asserts internally)
    assert net.ledger.total_delivered == sum(m.size for m in phase.messages)
    # bounds
    assert result.makespan_ps >= bound
    # causality
    for rec in result.records:
        assert rec.inject_ps <= rec.start_ps <= rec.done_ps


@pytest.mark.parametrize("scheme", sorted(_network_factories()))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(phase=workloads())
def test_reruns_are_deterministic(scheme, phase):
    factory = _network_factories()[scheme]
    first = factory().run([_clone(phase)])
    second = factory().run([_clone(phase)])
    assert first.makespan_ps == second.makespan_ps
    assert [(r.seq, r.done_ps) for r in first.records] == [
        (r.seq, r.done_ps) for r in second.records
    ]

"""Multi-phase integration tests (phase barriers, preload reprogramming).

These pin the cross-phase machinery: batch programs recompiled per phase,
stale batch-load directives from an earlier phase (a fixed bug — they used
to fire into the next phase's shorter program), compiler flushes, and
barrier timing across all schemes.
"""

from __future__ import annotations

import pytest

from repro.networks.circuit import CircuitNetwork
from repro.networks.tdm import TdmNetwork
from repro.networks.wormhole import WormholeNetwork
from repro.params import PAPER_PARAMS
from repro.predict.hints import HintedPredictor
from repro.predict.timeout import TimeoutPredictor
from repro.sim.clock import us
from repro.sim.rng import RngStreams
from repro.traffic.base import TrafficPhase, assign_seq
from repro.traffic.nas import NasLikeTrace
from repro.traffic.twophase import TwoPhasePattern
from repro.types import Connection, Message

PARAMS = PAPER_PARAMS.with_overrides(n_ports=16)


def _phases(*message_lists, static=None, preload=None):
    phases = []
    for i, msgs in enumerate(message_lists):
        phases.append(
            TrafficPhase(
                f"p{i}",
                msgs,
                static_conns=(static[i] if static else set()),
                preload_configs=(preload[i] if preload else None),
            )
        )
    assign_seq(phases)
    return phases


class TestPhaseBarriers:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: WormholeNetwork(PARAMS),
            lambda: CircuitNetwork(PARAMS),
            lambda: TdmNetwork(PARAMS, k=3, mode="dynamic"),
        ],
        ids=["wormhole", "circuit", "tdm"],
    )
    def test_phase_two_starts_after_phase_one(self, factory):
        phases = _phases(
            [Message(src=0, dst=1, size=512)],
            [Message(src=2, dst=3, size=64)],
        )
        result = factory().run(phases)
        assert result.phases[1].start_ps >= result.phases[0].end_ps
        by_pair = {(r.src, r.dst): r for r in result.records}
        assert by_pair[(2, 3)].start_ps >= by_pair[(0, 1)].done_ps

    def test_phase_results_cover_run(self):
        pattern = TwoPhasePattern(16, 64, nn_rounds=2)
        result = TdmNetwork(PARAMS, k=4, mode="dynamic").run(
            pattern.phases(RngStreams(0))
        )
        assert len(result.phases) == 2
        assert result.phases[-1].end_ps == result.makespan_ps
        assert sum(p.messages for p in result.phases) == len(result.records)
        for p in result.phases:
            assert p.duration_ps > 0


class TestPreloadAcrossPhases:
    def test_stale_batch_directive_regression(self):
        """Phase 0 compiles a many-batch program; phase 1 a single-batch
        one.  A batch-load directive scheduled near the end of phase 0
        must not fire into phase 1's shorter program (used to raise
        IndexError)."""
        from repro.fabric.config import ConfigMatrix

        n = PARAMS.n_ports
        # phase 0: node 0 scatters to many destinations -> many batches
        p0_msgs = [Message(src=0, dst=v, size=64) for v in range(1, n)]
        p0_preload = [
            ConfigMatrix.from_pairs(n, [(0, v)]) for v in range(1, n)
        ]
        # phase 1: a single ring permutation -> one batch
        p1_msgs = [Message(src=u, dst=(u + 1) % n, size=64) for u in range(n)]
        p1_preload = [
            ConfigMatrix.from_pairs(n, [(u, (u + 1) % n) for u in range(n)])
        ]
        phases = _phases(
            p0_msgs,
            p1_msgs,
            static={0: {Connection(0, v) for v in range(1, n)},
                    1: {Connection(u, (u + 1) % n) for u in range(n)}},
            preload={0: p0_preload, 1: p1_preload},
        )
        net = TdmNetwork(PARAMS, k=3, mode="hybrid", k_preload=1)
        result = net.run(phases)
        assert len(result.records) == len(p0_msgs) + len(p1_msgs)

    def test_pure_preload_multiphase(self):
        pattern = TwoPhasePattern(16, 64, nn_rounds=2)
        net = TdmNetwork(PARAMS, k=4, mode="preload", injection_window=4)
        result = net.run(pattern.phases(RngStreams(0)))
        assert len(result.records) == 16 * 15 + 16 * 4 * 2
        assert result.counters.get("establishes", 0) == 0

    def test_nas_trace_hybrid_with_flush(self):
        trace = NasLikeTrace(16, 64, n_phases=4, rounds_per_phase=2)
        net = TdmNetwork(
            PARAMS, k=4, mode="hybrid", k_preload=2, flush_on_phase=True
        )
        phases = trace.phases(RngStreams(9))
        result = net.run(phases, pattern_name=trace.name)
        assert len(result.records) == sum(len(p.messages) for p in phases)
        assert result.counters["flushes"] == len(phases) - 1


class TestPredictorsAcrossPhases:
    def test_flush_clears_predictor_state(self):
        base = TimeoutPredictor(us(50))
        predictor = HintedPredictor(base, pinned={Connection(0, 1)})
        phases = _phases(
            [Message(src=0, dst=1, size=64)],
            [Message(src=2, dst=3, size=64)],
        )
        net = TdmNetwork(
            PARAMS, k=2, mode="dynamic", predictor=predictor, flush_on_phase=True
        )
        result = net.run(phases)
        assert len(result.records) == 2
        assert predictor.flushes == 1
        assert predictor.pinned == set()  # the flush dropped the pin

    def test_latched_connection_survives_phase_gap(self):
        """A timeout-latched connection from phase 0 is reused by phase 1
        when the gap is shorter than the timeout."""
        phases = _phases(
            [Message(src=0, dst=1, size=64)],
            [Message(src=0, dst=1, size=64)],
        )
        net = TdmNetwork(
            PARAMS, k=2, mode="dynamic", predictor=TimeoutPredictor(us(50))
        )
        result = net.run(phases)
        assert len(result.records) == 2
        assert result.counters["establishes"] == 1


class TestProgramlessPhases:
    def test_hybrid_phase_without_static_info_unpins(self):
        """A phase with no static connections hands pinned registers back
        to the dynamic scheduler instead of leaking the previous phase's
        configurations."""
        from repro.fabric.config import ConfigMatrix

        n = PARAMS.n_ports
        p0 = _phases(
            [Message(src=0, dst=1, size=64)],
            static={0: {Connection(0, 1)}},
        )[0]
        p1 = TrafficPhase("no-static", [Message(src=2, dst=3, size=64)])
        phases = [p0, p1]
        assign_seq(phases)
        net = TdmNetwork(PARAMS, k=3, mode="hybrid", k_preload=1)
        result = net.run(phases)
        assert len(result.records) == 2
        assert net.scheduler.registers.pinned == set()

    def test_pure_preload_rejects_staticless_phase(self):
        from repro.errors import SchedulingError

        p0 = TrafficPhase("blind", [Message(src=0, dst=1, size=64)])
        assign_seq([p0])
        net = TdmNetwork(PARAMS, k=2, mode="preload")
        with pytest.raises(SchedulingError):
            net.run([p0])

"""Smoke tests: every example script runs to completion."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script: Path):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3

"""Unit and property tests for the Table-1 pre-scheduling logic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis.extra.numpy import arrays

from repro.errors import InvariantError
from repro.sched.presched import compute_l


def _m(*rows):
    return np.array(rows, dtype=bool)


class TestTable1Cases:
    """Each row of Table 1, element-wise."""

    def test_not_requested_not_in_slot(self):
        res = compute_l(_m([0]), _m([0]), _m([0]))
        assert not res.l[0, 0]

    def test_release_case(self):
        # requested nowhere, but realised in slot s -> release
        res = compute_l(_m([0]), _m([1]), _m([1]))
        assert res.l[0, 0] and res.release[0, 0] and not res.establish[0, 0]

    def test_requested_realized_elsewhere(self):
        # R=1, B*=1 (some other slot), B(s)=0 -> no change
        res = compute_l(_m([1]), _m([0]), _m([1]))
        assert not res.l[0, 0]

    def test_requested_realized_in_this_slot(self):
        # R=1, B*=1, B(s)=1 -> no change (keep the connection)
        res = compute_l(_m([1]), _m([1]), _m([1]))
        assert not res.l[0, 0]

    def test_establish_case(self):
        res = compute_l(_m([1]), _m([0]), _m([0]))
        assert res.l[0, 0] and res.establish[0, 0] and not res.release[0, 0]

    def test_release_and_establish_disjoint(self):
        r = _m([1, 0], [0, 1])
        b_s = _m([0, 0], [1, 0])
        b_star = _m([0, 0], [1, 0])
        res = compute_l(r, b_s, b_star)
        assert not np.any(res.release & res.establish)
        assert np.array_equal(res.l, res.release | res.establish)


class TestExtensions:
    def test_hold_suppresses_release(self):
        # request dropped but the latch holds the connection
        hold = _m([1])
        res = compute_l(_m([0]), _m([1]), _m([1]), hold=hold)
        assert not res.l[0, 0]

    def test_hold_does_not_create_establish_without_need(self):
        # latched connection already realised: nothing to do
        res = compute_l(_m([0]), _m([0]), _m([1]), hold=_m([1]))
        assert not res.l[0, 0]

    def test_hold_can_establish(self):
        # a latched connection that lost its slot is re-established
        res = compute_l(_m([0]), _m([0]), _m([0]), hold=_m([1]))
        assert res.establish[0, 0]

    def test_boost_allows_second_slot(self):
        # realised in another slot, but boosted -> establish here too
        res = compute_l(_m([1]), _m([0]), _m([1]), boost=_m([1]))
        assert res.establish[0, 0]

    def test_boost_not_applied_to_same_slot(self):
        # already realised in this very slot: no duplicate toggle
        res = compute_l(_m([1]), _m([1]), _m([1]), boost=_m([1]))
        assert not res.l[0, 0]


class TestValidation:
    def test_b_s_implies_b_star(self):
        with pytest.raises(InvariantError):
            compute_l(_m([0]), _m([1]), _m([0]), validate=True)

    def test_validate_shapes(self):
        with pytest.raises(InvariantError):
            compute_l(
                np.zeros((2, 2), bool),
                np.zeros((2, 3), bool),
                np.zeros((2, 2), bool),
                validate=True,
            )

    def test_validate_dtype(self):
        with pytest.raises(InvariantError):
            compute_l(
                np.zeros((2, 2), int),
                np.zeros((2, 2), bool),
                np.zeros((2, 2), bool),
                validate=True,
            )


@given(
    arrays(bool, (6, 6)),
    arrays(bool, (6, 6)),
)
def test_property_l_definition(r, b_star_extra):
    """L == (establish | release) with the documented definitions."""
    # build a consistent (b_s, b_star) pair: b_s subset of b_star
    b_s = b_star_extra & r  # arbitrary but deterministic subset
    b_star = b_star_extra | b_s
    res = compute_l(r, b_s, b_star, validate=True)
    expected_release = ~r & b_s
    expected_establish = r & ~b_star
    assert np.array_equal(res.release, expected_release)
    assert np.array_equal(res.establish, expected_establish)
    assert np.array_equal(res.l, expected_release | expected_establish)

"""Unit tests for the full scheduler, TDM counter, and priority policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.fabric.config import ConfigMatrix
from repro.params import PAPER_PARAMS
from repro.sched.priority import FixedPriority, RandomPriority, RoundRobinPriority
from repro.sched.scheduler import Scheduler
from repro.sim.rng import stream


@pytest.fixture
def sched():
    params = PAPER_PARAMS.with_overrides(n_ports=8)
    return Scheduler(params, k=4)


class TestSchedulerBasics:
    def test_initial_state(self, sched):
        assert sched.n == 8 and sched.k == 4
        assert not sched.registers.b_star.any()

    def test_establish_on_request(self, sched):
        sched.set_request(1, 2, True)
        result = sched.sl_pass()
        assert result.changed
        assert sched.established_anywhere(1, 2)

    def test_release_on_request_drop(self, sched):
        sched.set_request(1, 2, True)
        result = sched.sl_pass()
        slot = result.slot
        sched.set_request(1, 2, False)
        # passes round-robin over slots; run k passes to revisit the slot
        for _ in range(sched.k):
            sched.sl_pass()
        assert not sched.established_anywhere(1, 2)

    def test_no_duplicate_across_slots(self, sched):
        sched.set_request(1, 2, True)
        for _ in range(8):
            sched.sl_pass()
        assert len(sched.registers.slots_of(1, 2)) == 1

    def test_latch_holds_connection(self, sched):
        sched.set_request(1, 2, True)
        sched.sl_pass()
        sched.set_request(1, 2, False)
        sched.latch(1, 2)
        for _ in range(8):
            sched.sl_pass()
        assert sched.established_anywhere(1, 2)
        sched.latch(1, 2, False)
        for _ in range(4):
            sched.sl_pass()
        assert not sched.established_anywhere(1, 2)

    def test_row_capacity_spreads_over_slots(self, sched):
        """One source with many destinations gets one connection per slot."""
        for v in range(5):
            sched.set_request(0, v + 1, True)
        for _ in range(8):
            sched.sl_pass()
        slots_used = {sched.registers.slot_of(0, v + 1) for v in range(5)}
        slots_used.discard(None)
        # 4 slots -> at most 4 of the 5 requests can be established
        established = [v + 1 for v in range(5) if sched.established_anywhere(0, v + 1)]
        assert len(established) == 4
        assert len(slots_used) == 4

    def test_counters(self, sched):
        sched.set_request(0, 1, True)
        sched.sl_pass()
        assert sched.counters["establishes"] == 1
        assert sched.counters["passes"] == 1


class TestPreloadAndFlush:
    def test_preload_pins(self, sched):
        cfgs = [ConfigMatrix.from_pairs(8, [(0, 1)]), ConfigMatrix.from_pairs(8, [(1, 2)])]
        sched.preload(cfgs)
        assert sched.registers.pinned == {0, 1}
        assert sched.registers.dynamic_slots() == [2, 3]

    def test_preload_too_many(self, sched):
        with pytest.raises(SchedulingError):
            sched.preload([ConfigMatrix(8)] * 5)

    def test_pass_skips_pinned(self, sched):
        sched.preload([ConfigMatrix.from_pairs(8, [(0, 1)])])
        sched.set_request(0, 1, False)  # no request for the pinned conn
        for _ in range(8):
            result = sched.sl_pass()
            assert result.slot != 0  # never schedules the pinned slot
        assert sched.established_anywhere(0, 1)  # never released

    def test_explicit_pass_on_pinned_rejected(self, sched):
        sched.preload([ConfigMatrix(8)])
        with pytest.raises(SchedulingError):
            sched.sl_pass(0)

    def test_request_covered_by_pinned_not_duplicated(self, sched):
        sched.preload([ConfigMatrix.from_pairs(8, [(0, 1)])])
        sched.set_request(0, 1, True)
        for _ in range(8):
            sched.sl_pass()
        assert sched.registers.slots_of(0, 1) == [0]

    def test_flush_clears_everything(self, sched):
        sched.preload([ConfigMatrix.from_pairs(8, [(0, 1)])])
        sched.set_request(2, 3, True)
        sched.sl_pass()
        sched.latch(4, 5)
        sched.flush()
        assert not sched.registers.b_star.any()
        assert not sched.latched.any()
        assert sched.registers.pinned == set()

    def test_all_pinned_pass_is_idle(self):
        params = PAPER_PARAMS.with_overrides(n_ports=8)
        s = Scheduler(params, k=2)
        s.preload([ConfigMatrix(8), ConfigMatrix(8)])
        result = s.sl_pass()
        assert result.slot is None and not result.changed


class TestTdmCounter:
    def test_skips_empty_configs(self):
        params = PAPER_PARAMS.with_overrides(n_ports=8)
        s = Scheduler(params, k=4)
        s.registers.establish(2, 0, 1)
        counter = s.tdm
        assert counter.advance() == 2
        assert counter.advance() == 2  # only one non-empty slot

    def test_all_empty_returns_none(self):
        params = PAPER_PARAMS.with_overrides(n_ports=8)
        s = Scheduler(params, k=4)
        assert s.tdm.advance() is None
        assert s.tdm.idle_ticks == 1

    def test_cycles_active_slots(self):
        params = PAPER_PARAMS.with_overrides(n_ports=8)
        s = Scheduler(params, k=4)
        s.registers.establish(1, 0, 1)
        s.registers.establish(3, 2, 3)
        seq = [s.tdm.advance() for _ in range(4)]
        assert seq == [1, 3, 1, 3]

    def test_effective_degree(self):
        params = PAPER_PARAMS.with_overrides(n_ports=8)
        s = Scheduler(params, k=4)
        assert s.tdm.effective_degree == 0
        s.registers.establish(0, 0, 1)
        assert s.tdm.effective_degree == 1

    def test_pending_filter_skips_idle_configs(self):
        params = PAPER_PARAMS.with_overrides(n_ports=8)
        s = Scheduler(params, k=4)
        s.registers.establish(0, 0, 1)
        s.registers.establish(1, 2, 3)
        pending = np.zeros((8, 8), dtype=bool)
        pending[2, 3] = True  # only slot 1's connection has traffic
        assert s.tdm.advance(pending) == 1
        assert s.tdm.advance(pending) == 1

    def test_pending_filter_none_match(self):
        params = PAPER_PARAMS.with_overrides(n_ports=8)
        s = Scheduler(params, k=2)
        s.registers.establish(0, 0, 1)
        pending = np.zeros((8, 8), dtype=bool)
        assert s.tdm.advance(pending) is None

    def test_peek_does_not_move(self):
        params = PAPER_PARAMS.with_overrides(n_ports=8)
        s = Scheduler(params, k=4)
        s.registers.establish(2, 0, 1)
        assert s.tdm.peek() == 2
        assert s.tdm.current == 0


class TestPriorityPolicies:
    def test_fixed(self):
        p = FixedPriority(8, 3, 5)
        assert p.next_rotation() == (3, 5)
        assert p.next_rotation() == (3, 5)

    def test_fixed_out_of_range(self):
        with pytest.raises(ConfigurationError):
            FixedPriority(8, 8, 0)

    def test_round_robin_advances(self):
        p = RoundRobinPriority(4)
        assert p.next_rotation() == (0, 0)
        assert p.next_rotation() == (1, 1)
        p.reset()
        assert p.next_rotation() == (0, 0)

    def test_round_robin_wraps(self):
        p = RoundRobinPriority(2)
        p.next_rotation()
        p.next_rotation()
        assert p.next_rotation() == (0, 0)

    def test_random_in_range_and_seeded(self):
        a = RandomPriority(8, stream(1, "p"))
        b = RandomPriority(8, stream(1, "p"))
        seq_a = [a.next_rotation() for _ in range(10)]
        seq_b = [b.next_rotation() for _ in range(10)]
        assert seq_a == seq_b
        assert all(0 <= x < 8 and 0 <= y < 8 for x, y in seq_a)

    @pytest.mark.parametrize(
        "make",
        [
            lambda: FixedPriority(8, 3, 5),
            lambda: RoundRobinPriority(5),
            lambda: RandomPriority(8, stream(7, "p")),
        ],
        ids=["fixed", "round-robin", "random"],
    )
    def test_advance_matches_discarded_rotations(self, make):
        """advance(k) must leave the policy exactly where k discarded
        next_rotation() calls would — the fast path's bulk SL passes
        depend on this for every policy, including the rng stream of
        RandomPriority."""
        bulk, loop = make(), make()
        for k in (0, 1, 3, 11):
            bulk.advance(k)
            for _ in range(k):
                loop.next_rotation()
            assert [bulk.next_rotation() for _ in range(3)] == [
                loop.next_rotation() for _ in range(3)
            ]

"""Unit tests for the scheduler extensions (multi-unit, multi-slot)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.params import PAPER_PARAMS
from repro.sched.multislot import QueueDepthBoostPolicy
from repro.sched.multiunit import MultiUnitScheduler
from repro.sched.scheduler import Scheduler


@pytest.fixture
def params8():
    return PAPER_PARAMS.with_overrides(n_ports=8)


class TestMultiUnit:
    def test_needs_positive_units(self, params8):
        with pytest.raises(ConfigurationError):
            MultiUnitScheduler(params8, k=4, n_units=0)

    def test_tick_runs_multiple_passes(self, params8):
        s = MultiUnitScheduler(params8, k=4, n_units=2)
        for v in range(1, 4):
            s.set_request(0, v, True)
        passes = s.sl_tick()
        assert len(passes) == 2
        slots = {p.slot for p in passes}
        assert len(slots) == 2  # distinct slots per unit

    def test_units_do_not_duplicate_connections(self, params8):
        s = MultiUnitScheduler(params8, k=4, n_units=4)
        s.set_request(0, 1, True)
        s.sl_tick()
        # four units, one request: established exactly once
        assert len(s.registers.slots_of(0, 1)) == 1

    def test_faster_establishment_than_single_unit(self, params8):
        """Four units fill four slots for one source in a single tick."""
        multi = MultiUnitScheduler(params8, k=4, n_units=4)
        single = Scheduler(params8, k=4)
        for v in range(1, 5):
            multi.set_request(0, v, True)
            single.set_request(0, v, True)
        multi.sl_tick()
        single.sl_pass()
        multi_count = int(multi.registers.b_star.sum())
        single_count = int(single.registers.b_star.sum())
        assert multi_count == 4
        assert single_count == 1

    def test_tick_with_all_pinned_reports_idle(self, params8):
        from repro.fabric.config import ConfigMatrix

        s = MultiUnitScheduler(params8, k=2, n_units=2)
        s.preload([ConfigMatrix(8), ConfigMatrix(8)])
        passes = s.sl_tick()
        assert len(passes) == 1 and passes[0].slot is None


class TestBoostPolicy:
    def test_validation(self, params8):
        s = Scheduler(params8, k=4)
        with pytest.raises(ConfigurationError):
            QueueDepthBoostPolicy(s, threshold_bytes=0)
        with pytest.raises(ConfigurationError):
            QueueDepthBoostPolicy(s, threshold_bytes=100, max_slots=0)

    def test_boost_mask_set_for_deep_requested_queues(self, params8):
        s = Scheduler(params8, k=4)
        policy = QueueDepthBoostPolicy(s, threshold_bytes=100, max_slots=2)
        s.set_request(0, 1, True)
        q = np.zeros((8, 8), dtype=np.int64)
        q[0, 1] = 500
        policy.update(q)
        assert s.boost[0, 1]

    def test_no_boost_without_request(self, params8):
        s = Scheduler(params8, k=4)
        policy = QueueDepthBoostPolicy(s, threshold_bytes=100)
        q = np.zeros((8, 8), dtype=np.int64)
        q[0, 1] = 500
        policy.update(q)
        assert not s.boost[0, 1]

    def test_boost_capped_at_max_slots(self, params8):
        s = Scheduler(params8, k=4)
        policy = QueueDepthBoostPolicy(s, threshold_bytes=100, max_slots=2)
        s.set_request(0, 1, True)
        q = np.zeros((8, 8), dtype=np.int64)
        q[0, 1] = 10_000
        for _ in range(8):
            policy.update(q)
            s.sl_pass()
        assert len(s.registers.slots_of(0, 1)) == 2

    def test_release_excess_trims_to_one_slot(self, params8):
        s = Scheduler(params8, k=4)
        policy = QueueDepthBoostPolicy(s, threshold_bytes=100, max_slots=2)
        s.set_request(0, 1, True)
        q = np.zeros((8, 8), dtype=np.int64)
        q[0, 1] = 10_000
        for _ in range(8):
            policy.update(q)
            s.sl_pass()
        assert len(s.registers.slots_of(0, 1)) == 2
        q[0, 1] = 10  # backlog drained below threshold
        released = policy.release_excess(q)
        assert released == 1
        assert len(s.registers.slots_of(0, 1)) == 1

    def test_release_excess_spares_pinned(self, params8):
        from repro.fabric.config import ConfigMatrix

        s = Scheduler(params8, k=4)
        policy = QueueDepthBoostPolicy(s, threshold_bytes=100, max_slots=2)
        s.registers.load(0, ConfigMatrix.from_pairs(8, [(0, 1)]), pin=True)
        s.registers.establish(1, 0, 1)
        q = np.zeros((8, 8), dtype=np.int64)
        released = policy.release_excess(q)
        # slot 1 (unpinned) released; the pinned slot-0 copy kept
        assert released == 1
        assert s.registers.slots_of(0, 1) == [0]

"""Unit and property tests for the constrained (non-crossbar) scheduler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.config import ConfigMatrix
from repro.fabric.fattree import FatTree
from repro.fabric.multistage import OmegaNetwork
from repro.params import PAPER_PARAMS
from repro.sched.constrained import ConstrainedScheduler
from repro.sched.priority import FixedPriority
from repro.sched.scheduler import Scheduler

N = 8
PARAMS = PAPER_PARAMS.with_overrides(n_ports=N)


class _AlwaysRealizable:
    def is_realizable(self, config: ConfigMatrix) -> bool:
        return True


class _NeverRealizable:
    def is_realizable(self, config: ConfigMatrix) -> bool:
        return len(config) == 0


class TestBasics:
    def test_establish_under_permissive_constraint(self):
        s = ConstrainedScheduler(PARAMS, k=2, constraint=_AlwaysRealizable())
        s.set_request(0, 1, True)
        result = s.sl_pass()
        assert result.changed
        assert s.established_anywhere(0, 1)

    def test_vetoed_establish_is_blocked(self):
        s = ConstrainedScheduler(PARAMS, k=2, constraint=_NeverRealizable())
        s.set_request(0, 1, True)
        result = s.sl_pass()
        assert not result.changed
        assert result.outcome.blocked == 1
        assert s.counters["blocked_by_fabric"] == 1
        assert not s.established_anywhere(0, 1)

    def test_veto_leaves_registers_clean(self):
        s = ConstrainedScheduler(PARAMS, k=2, constraint=_NeverRealizable())
        s.set_request(0, 1, True)
        s.sl_pass()
        s.registers.check_invariants()
        assert not s.registers.b_star.any()

    def test_release_always_allowed(self):
        s = ConstrainedScheduler(PARAMS, k=2, constraint=_AlwaysRealizable())
        s.set_request(0, 1, True)
        s.sl_pass()
        s.set_request(0, 1, False)
        s.constraint = _NeverRealizable()  # even a hostile fabric
        for _ in range(2):
            s.sl_pass()
        assert not s.established_anywhere(0, 1)


class TestFabricConstraints:
    def test_fat_tree_capacity_respected(self):
        ft = FatTree(N, taper=N)  # capacity 1 on every upward link
        s = ConstrainedScheduler(PARAMS, k=1, constraint=ft)
        # two cross-tree connections leaving the {0,1} subtree upward
        s.set_request(0, 4, True)
        s.set_request(1, 5, True)
        s.sl_pass(0)
        established = [
            (u, v) for (u, v) in [(0, 4), (1, 5)] if s.established_anywhere(u, v)
        ]
        assert len(established) == 1  # the second violates the edge capacity
        assert s.counters["blocked_by_fabric"] == 1

    def test_omega_conflicts_respected(self):
        om = OmegaNetwork(N)
        s = ConstrainedScheduler(PARAMS, k=1, constraint=om)
        for u in range(N):
            for v in range(N):
                if u != v:
                    s.set_request(u, v, True)
        s.sl_pass(0)
        # whatever got established must be realisable on the Omega network
        assert om.is_realizable(s.registers[0])

    def test_blocked_requests_served_across_slots(self):
        ft = FatTree(N, taper=N)
        s = ConstrainedScheduler(PARAMS, k=2, constraint=ft)
        s.set_request(0, 4, True)
        s.set_request(1, 5, True)
        for _ in range(4):
            s.sl_pass()
        # both connections live, in different slots
        assert s.established_anywhere(0, 4)
        assert s.established_anywhere(1, 5)
        assert s.registers.slot_of(0, 4) != s.registers.slot_of(1, 5)


@st.composite
def request_streams(draw):
    steps = draw(
        st.lists(
            st.tuples(
                st.integers(0, N - 1), st.integers(0, N - 1), st.booleans()
            ),
            max_size=30,
        )
    )
    return steps


@settings(max_examples=80, deadline=None)
@given(request_streams())
def test_permissive_constraint_matches_sl_array(steps):
    """With a trivially-true constraint and the same rotation, the
    constrained scheduler produces the same configurations as the SL
    array scheduler over any request evolution."""
    a = Scheduler(PARAMS, k=3, rotation=FixedPriority(N))
    b = ConstrainedScheduler(
        PARAMS, k=3, constraint=_AlwaysRealizable(), rotation=FixedPriority(N)
    )
    for u, v, val in steps:
        a.set_request(u, v, val)
        b.set_request(u, v, val)
        a.sl_pass()
        b.sl_pass()
        for slot in range(3):
            assert np.array_equal(a.registers[slot].b, b.registers[slot].b)
    a.registers.check_invariants()
    b.registers.check_invariants()


def test_explicit_pass_on_pinned_rejected():
    from repro.errors import SchedulingError

    s = ConstrainedScheduler(PARAMS, k=2, constraint=_AlwaysRealizable())
    s.registers.load(0, ConfigMatrix(N), pin=True)
    with pytest.raises(SchedulingError):
        s.sl_pass(0)

"""Property tests for the TDM counter and scheduler long-run invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.registers import ConfigRegisterFile
from repro.params import PAPER_PARAMS
from repro.sched.scheduler import Scheduler
from repro.sched.tdm import TdmCounter

N = 8
PARAMS = PAPER_PARAMS.with_overrides(n_ports=N)


@st.composite
def register_files(draw, n=N, k=4):
    regs = ConfigRegisterFile(n, k)
    for slot in range(k):
        pairs = draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=n,
            )
        )
        for u, v in pairs:
            cfg = regs[slot]
            if cfg.output_of(u) is None and cfg.input_of(v) is None:
                regs.establish(slot, u, v)
    return regs


@settings(max_examples=100, deadline=None)
@given(register_files())
def test_counter_never_lands_on_empty(regs):
    counter = TdmCounter(regs)
    active = set(regs.active_slots())
    for _ in range(3 * regs.k):
        slot = counter.advance()
        if not active:
            assert slot is None
        else:
            assert slot in active


@settings(max_examples=100, deadline=None)
@given(register_files())
def test_counter_visits_all_active_slots_round_robin(regs):
    counter = TdmCounter(regs)
    active = regs.active_slots()
    if not active:
        return
    visited = [counter.advance() for _ in range(len(active))]
    assert sorted(visited) == active  # each active slot exactly once per cycle
    # and the cycle repeats identically
    again = [counter.advance() for _ in range(len(active))]
    assert visited == again


@settings(max_examples=100, deadline=None)
@given(register_files())
def test_counter_pending_filter_subset(regs):
    """With a pending mask, the counter only lands on slots that carry it."""
    rng = np.random.default_rng(0)
    pending = rng.random((N, N)) < 0.3
    counter = TdmCounter(regs)
    for _ in range(2 * regs.k):
        slot = counter.advance(pending)
        if slot is not None:
            assert np.any(regs[slot].b & pending)


@st.composite
def request_traces(draw, n=N, steps=40):
    return draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1), st.booleans()
            ),
            max_size=steps,
        )
    )


@settings(max_examples=80, deadline=None)
@given(request_traces())
def test_scheduler_long_run_invariants(trace):
    """Arbitrary request evolutions keep every structural invariant."""
    sched = Scheduler(PARAMS, k=3)
    for u, v, val in trace:
        sched.set_request(u, v, val)
        sched.sl_pass()
        sched.registers.check_invariants()
        # a connection never occupies two slots without the boost extension
        assert sched.registers.presence_counts().max(initial=0) <= 1
    # eventually quiescent: drop all requests and run k passes per slot
    sched.r_view[:] = False
    for _ in range(2 * sched.k):
        sched.sl_pass()
    assert not sched.registers.b_star.any()


@settings(max_examples=50, deadline=None)
@given(request_traces())
def test_scheduler_satisfies_steady_requests(trace):
    """Any request set left standing long enough gets fully established,
    as long as it fits (one destination per source here)."""
    sched = Scheduler(PARAMS, k=3)
    wanted = {}
    for u, v, _ in trace:
        if u != v and u not in wanted:
            wanted[u] = v
    taken_outputs = set()
    feasible = {}
    for u, v in wanted.items():
        if v not in taken_outputs:
            feasible[u] = v
            taken_outputs.add(v)
    for u, v in feasible.items():
        sched.set_request(u, v, True)
    for _ in range(3 * sched.k):
        sched.sl_pass()
    for u, v in feasible.items():
        assert sched.established_anywhere(u, v)

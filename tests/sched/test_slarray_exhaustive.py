"""Exhaustive small-N verification of the SL array.

At N = 2 the whole input space is enumerable: every valid slot
configuration, every request matrix, every extra-B* mask, and every
priority rotation.  The dense behavioural oracle, the sparse fast path,
and the gate-level netlist must agree on *all* of them — no sampling, no
luck.  N = 3 is checked with full (config, R, rotation) enumeration and
the empty extra mask.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.fabric.config import ConfigMatrix
from repro.hw.rtl import SLArrayNetlist
from repro.sched.presched import compute_l
from repro.sched.slarray import wavefront_batch, wavefront_reference, wavefront_sparse


def _partial_permutations(n):
    """All valid slot configurations of an n-port crossbar."""
    configs = []
    for dsts in itertools.product([-1, *range(n)], repeat=n):
        used = [d for d in dsts if d >= 0]
        if len(used) != len(set(used)):
            continue
        configs.append(ConfigMatrix.from_permutation(list(dsts)))
    return configs


def _bool_matrices(n):
    for bits in itertools.product([False, True], repeat=n * n):
        yield np.array(bits, dtype=bool).reshape(n, n)


def _agree(cfg, r, b_star, rotation):
    pres = compute_l(r, cfg.b, b_star)
    ao, ai = cfg.output_busy(), cfg.input_busy()
    dense = wavefront_reference(pres.l, cfg.b, ao, ai, rotation)
    rows, cols = np.nonzero(pres.l)
    sparse = wavefront_sparse(rows, cols, cfg.b, ao, ai, rotation)
    batch = wavefront_batch(rows, cols, cfg.b, ao, ai, rotation, min_nnz=0)
    netlist = SLArrayNetlist(cfg.n).evaluate(pres.l, cfg.b, ao, ai, rotation)
    dense_t = dense.toggle_matrix(cfg.n)
    dense_key = [(t.u, t.v, t.establish) for t in dense.toggles]
    assert [(t.u, t.v, t.establish) for t in sparse.toggles] == dense_key
    assert [(t.u, t.v, t.establish) for t in batch.toggles] == dense_key
    assert batch.blocked == dense.blocked
    assert np.array_equal(dense_t, netlist)
    # applying the toggles keeps the slot a valid partial permutation
    after = cfg.b ^ dense_t
    assert after.sum(axis=0).max(initial=0) <= 1
    assert after.sum(axis=1).max(initial=0) <= 1


def test_exhaustive_n2():
    """Every input at N = 2: 7 configs x 16 R x 16 extras x 4 rotations."""
    n = 2
    checked = 0
    for cfg in _partial_permutations(n):
        for r in _bool_matrices(n):
            for extra in _bool_matrices(n):
                b_star = cfg.b | extra
                for rotation in itertools.product(range(n), repeat=2):
                    _agree(cfg, r, b_star, rotation)
                    checked += 1
    assert checked == 7 * 16 * 16 * 4


def test_exhaustive_n3_without_extras():
    """Every (config, R, rotation) at N = 3 with B* = B(s)."""
    n = 3
    checked = 0
    for cfg in _partial_permutations(n):
        for r in _bool_matrices(n):
            for rotation in ((0, 0), (1, 2), (2, 1)):
                _agree(cfg, r, cfg.b.copy(), rotation)
                checked += 1
    assert checked == 34 * 512 * 3


@pytest.mark.parametrize("rotation", [(0, 0), (1, 0), (0, 1), (2, 2)])
def test_full_matrix_requests_n3(rotation):
    """The all-ones request matrix on an empty slot always yields a
    maximal matching (here: a full permutation of 3)."""
    n = 3
    cfg = ConfigMatrix(n)
    r = np.ones((n, n), dtype=bool)
    pres = compute_l(r, cfg.b, cfg.b.copy())
    out = wavefront_reference(
        pres.l, cfg.b, cfg.output_busy(), cfg.input_busy(), rotation
    )
    assert len(out.established) == n

"""Tests for the Solstice-style schedule computer and its coverage metric."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiled.coloring import connection_degree, decompose
from repro.errors import ConfigurationError
from repro.sched.solstice import schedule_coverage, solstice_schedule
from repro.sim.rng import RngStreams


def _edges_of(configs):
    union = set()
    for cfg in configs:
        cfg.check_invariants()
        union |= {tuple(c) for c in cfg.connections()}
    return union


def _skewed_demand(n: int, n_edges: int, seed: int) -> dict:
    gen = RngStreams(seed).get(f"solstice-test-{n}-{n_edges}")
    edges = set()
    while len(edges) < n_edges:
        u = int(gen.integers(0, n))
        v = int(gen.integers(0, n - 1))
        if v >= u:
            v += 1
        edges.add((u, v))
    return {e: 10 ** int(gen.integers(1, 6)) for e in sorted(edges)}


class TestSchedule:
    def test_empty(self):
        assert solstice_schedule({}, 4) == []

    def test_single_edge(self):
        sched = solstice_schedule({(0, 1): 100}, 4)
        assert len(sched) == 1
        cfg, covered = sched[0]
        assert covered == 100
        assert _edges_of([cfg]) == {(0, 1)}

    def test_every_edge_exactly_once(self):
        demand = _skewed_demand(8, 20, seed=3)
        sched = solstice_schedule(demand, 8)
        seen = []
        for cfg, _ in sched:
            seen.extend(tuple(c) for c in cfg.connections())
        assert sorted(seen) == sorted(demand)  # no repeats, no omissions

    def test_rounds_are_demand_ranked(self):
        """The heaviest edge is always in the very first configuration."""
        demand = _skewed_demand(8, 20, seed=4)
        peak = max(demand.values())
        first_cfg, _ = solstice_schedule(demand, 8)[0]
        assert any(demand[e] == peak for e in _edges_of([first_cfg]))

    def test_covered_demand_sums_to_total(self):
        demand = _skewed_demand(8, 20, seed=5)
        sched = solstice_schedule(demand, 8)
        assert sum(covered for _, covered in sched) == sum(demand.values())

    def test_schedule_length_near_degree(self):
        """Greedy maximal rounds stay close to the Δ lower bound."""
        demand = _skewed_demand(16, 40, seed=6)
        delta = connection_degree(sorted(demand), 16)
        assert delta <= len(solstice_schedule(demand, 16)) <= 2 * delta

    def test_zero_demand_edges_kept_and_scheduled(self):
        sched = solstice_schedule({(0, 1): 0, (1, 0): 50}, 4)
        assert _edges_of(cfg for cfg, _ in sched) == {(0, 1), (1, 0)}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            solstice_schedule({(0, 4): 1}, 4)
        with pytest.raises(ConfigurationError):
            solstice_schedule({(0, 1): -1}, 4)


class TestCoverage:
    def test_empty_demand_is_fully_covered(self):
        assert schedule_coverage([], {}, budget=4) == 1.0

    def test_full_schedule_covers_everything(self):
        demand = _skewed_demand(8, 20, seed=7)
        configs = [cfg for cfg, _ in solstice_schedule(demand, 8)]
        assert schedule_coverage(configs, demand) == 1.0

    def test_prefix_budget(self):
        demand = {(0, 1): 75, (0, 2): 25}
        configs = [cfg for cfg, _ in solstice_schedule(demand, 4)]
        assert schedule_coverage(configs, demand, budget=1) == 0.75

    def test_solstice_beats_coloring_on_constructed_skew(self):
        """One port fans out to five destinations, one of which gets
        almost all the bytes; colouring may bury that edge anywhere in
        its five colour classes, Solstice puts it first."""
        demand = {(0, v): 1 for v in range(1, 6)}
        demand[(0, 5)] = 10_000
        solstice = [cfg for cfg, _ in solstice_schedule(demand, 8)]
        assert schedule_coverage(solstice, demand, budget=1) > 0.99

    def test_solstice_at_least_ties_coloring_on_skewed_matrices(self):
        """The bake-off claim, statistically: over seeded skewed demand
        matrices, demand-ranked schedules never lose coverage at the
        register-file budget, and win a solid majority."""
        budget, wins, losses = 4, 0, 0
        for seed in range(40):
            demand = _skewed_demand(16, 40, seed=seed)
            conns = sorted(demand)
            coloring = schedule_coverage(
                decompose(conns, 16), demand, budget=budget
            )
            solstice = schedule_coverage(
                [cfg for cfg, _ in solstice_schedule(demand, 16)],
                demand,
                budget=budget,
            )
            wins += solstice > coloring + 1e-12
            losses += coloring > solstice + 1e-12
        assert wins >= 25
        assert losses <= 5


@settings(max_examples=100, deadline=None)
@given(
    st.dictionaries(
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
        st.integers(0, 10**6),
        max_size=30,
    )
)
def test_property_schedule_is_exact_partition(demand):
    """Any demand map decomposes into valid configs, each edge once."""
    sched = solstice_schedule(demand, 8)
    seen = []
    for cfg, _ in sched:
        cfg.check_invariants()
        seen.extend(tuple(c) for c in cfg.connections())
    assert sorted(seen) == sorted(demand)
    configs = [cfg for cfg, _ in sched]
    assert schedule_coverage(configs, demand) == 1.0

"""Property tests: the vectorized batch wavefront is bit-identical.

`wavefront_batch` evaluates all pending L-cells with matrix operations
instead of walking them sequentially; every outcome — toggle set, toggle
*order*, and blocked count — must match the dense Table-2 oracle and the
sparse fast path exactly, across rotations, occupancy patterns, and
fault-degraded (dead-cell) port sets.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.config import ConfigMatrix
from repro.sched.presched import compute_l
from repro.sched.slarray import (
    wavefront_batch,
    wavefront_reference,
    wavefront_sparse,
)


def _outcomes(l, b_s, ao, ai, rotation):
    rows, cols = np.nonzero(l)
    dense = wavefront_reference(l, b_s, ao, ai, rotation)
    sparse = wavefront_sparse(rows, cols, b_s, ao, ai, rotation)
    # min_nnz=0 forces the vectorized path even for tiny inputs
    batch = wavefront_batch(rows, cols, b_s, ao, ai, rotation, min_nnz=0)
    return dense, sparse, batch


def _assert_identical(l, b_s, ao, ai, rotation):
    dense, sparse, batch = _outcomes(l, b_s, ao, ai, rotation)
    key = [(t.u, t.v, t.establish) for t in dense.toggles]
    assert [(t.u, t.v, t.establish) for t in sparse.toggles] == key
    assert [(t.u, t.v, t.establish) for t in batch.toggles] == key
    assert batch.blocked == dense.blocked == sparse.blocked


@st.composite
def scheduling_case(draw, max_n=12):
    """Random (cfg, L, rotation, dead ports) over variable port counts."""
    n = draw(st.integers(2, max_n))
    perm = draw(st.permutations(list(range(n))))
    keep = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    cfg = ConfigMatrix(n)
    for u, (v, k) in enumerate(zip(perm, keep)):
        if k:
            cfg.establish(u, v)
    r = np.array(
        draw(st.lists(st.lists(st.booleans(), min_size=n, max_size=n),
                      min_size=n, max_size=n)),
        dtype=bool,
    )
    extra = np.array(
        draw(st.lists(st.lists(st.booleans(), min_size=n, max_size=n),
                      min_size=n, max_size=n)),
        dtype=bool,
    )
    b_star = cfg.b | extra
    rotation = (draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1)))
    dead = draw(st.lists(st.integers(0, n - 1), max_size=2, unique=True))
    return cfg, r, b_star, rotation, dead


@settings(max_examples=300, deadline=None)
@given(scheduling_case())
def test_batch_equals_reference_and_sparse(case):
    cfg, r, b_star, rotation, dead = case
    pres = compute_l(r, cfg.b, b_star)
    _assert_identical(pres.l, cfg.b, cfg.output_busy(), cfg.input_busy(), rotation)


@settings(max_examples=200, deadline=None)
@given(scheduling_case())
def test_batch_equals_reference_with_dead_cells(case):
    """Fault-degraded port sets: dead rows/columns masked out of L."""
    cfg, r, b_star, rotation, dead = case
    pres = compute_l(r, cfg.b, b_star)
    l = pres.l.copy()
    for p in dead:
        l[p, :] = False
        l[:, p] = False
    _assert_identical(l, cfg.b, cfg.output_busy(), cfg.input_busy(), rotation)


@settings(max_examples=100, deadline=None)
@given(st.integers(2, 16), st.integers(0, 15), st.integers(0, 15))
def test_batch_full_request_matrix(n, a, b):
    """Dense all-to-all L on an empty slot — the worst-case batch input."""
    cfg = ConfigMatrix(n)
    l = np.ones((n, n), dtype=bool)
    rotation = (a % n, b % n)
    _assert_identical(l, cfg.b, cfg.output_busy(), cfg.input_busy(), rotation)
    out = wavefront_batch(*np.nonzero(l), cfg.b, cfg.output_busy(),
                          cfg.input_busy(), rotation, min_nnz=0)
    assert len(out.established) == n  # maximal: a full permutation


def test_batch_empty_is_empty():
    cfg = ConfigMatrix(4)
    rows, cols = np.nonzero(np.zeros((4, 4), dtype=bool))
    out = wavefront_batch(rows, cols, cfg.b, cfg.output_busy(), cfg.input_busy())
    assert out.toggles == [] and out.blocked == 0


def test_batch_release_chain_order():
    """Releases free ports for later establishes, in traversal order."""
    n = 4
    cfg = ConfigMatrix.from_pairs(n, [(0, 1)])
    l = np.zeros((n, n), dtype=bool)
    l[0, 1] = True  # release (0,1)
    l[2, 1] = True  # may then establish (2,1)
    _assert_identical(l, cfg.b, cfg.output_busy(), cfg.input_busy(), (0, 0))
    out = wavefront_batch(*np.nonzero(l), cfg.b, cfg.output_busy(),
                          cfg.input_busy(), (0, 0), min_nnz=0)
    assert [(t.u, t.v, t.establish) for t in out.toggles] == [
        (0, 1, False),
        (2, 1, True),
    ]


def test_batch_delegates_below_min_nnz():
    """Tiny inputs take the sparse path; outputs are identical regardless."""
    n = 8
    cfg = ConfigMatrix(n)
    l = np.zeros((n, n), dtype=bool)
    l[3, 5] = True
    rows, cols = np.nonzero(l)
    a = wavefront_batch(rows, cols, cfg.b, cfg.output_busy(), cfg.input_busy())
    b = wavefront_sparse(rows, cols, cfg.b, cfg.output_busy(), cfg.input_busy())
    assert [(t.u, t.v, t.establish) for t in a.toggles] == [
        (t.u, t.v, t.establish) for t in b.toggles
    ]

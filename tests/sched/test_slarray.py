"""Unit and property tests for the SL array (Table 2).

The dense :func:`wavefront_reference` is the oracle; the sparse fast path
must match it bit for bit on arbitrary inputs, including rotated priority
injection points.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.config import ConfigMatrix
from repro.sched.presched import compute_l
from repro.sched.slarray import wavefront_reference, wavefront_sparse


def _run_sparse(l, b_s, ao, ai, rotation=(0, 0)):
    rows, cols = np.nonzero(l)
    return wavefront_sparse(rows, cols, b_s, ao, ai, rotation)


def _apply(b_s, outcome):
    out = b_s.copy()
    for t in outcome.toggles:
        out[t.u, t.v] = not out[t.u, t.v]
    return out


def _valid_partial_permutation(b):
    return b.sum(axis=0).max(initial=0) <= 1 and b.sum(axis=1).max(initial=0) <= 1


class TestTable2Semantics:
    def test_single_establish(self):
        n = 4
        l = np.zeros((n, n), bool)
        l[1, 2] = True
        b_s = np.zeros((n, n), bool)
        out = wavefront_reference(l, b_s, b_s.any(0), b_s.any(1))
        assert len(out.toggles) == 1
        t = out.toggles[0]
        assert (t.u, t.v, t.establish) == (1, 2, True)

    def test_single_release(self):
        n = 4
        cfg = ConfigMatrix.from_pairs(n, [(1, 2)])
        l = np.zeros((n, n), bool)
        l[1, 2] = True
        out = wavefront_reference(l, cfg.b, cfg.output_busy(), cfg.input_busy())
        assert out.toggles[0].establish is False

    def test_establish_blocked_by_input(self):
        n = 4
        cfg = ConfigMatrix.from_pairs(n, [(1, 3)])  # input 1 busy
        l = np.zeros((n, n), bool)
        l[1, 2] = True
        out = wavefront_reference(l, cfg.b, cfg.output_busy(), cfg.input_busy())
        assert out.toggles == [] and out.blocked == 1

    def test_establish_blocked_by_output(self):
        n = 4
        cfg = ConfigMatrix.from_pairs(n, [(0, 2)])  # output 2 busy
        l = np.zeros((n, n), bool)
        l[1, 2] = True
        out = wavefront_reference(l, cfg.b, cfg.output_busy(), cfg.input_busy())
        assert out.toggles == [] and out.blocked == 1

    def test_release_frees_for_later_cell(self):
        """A release at (0,1) lets (2,1) establish in the same pass."""
        n = 4
        cfg = ConfigMatrix.from_pairs(n, [(0, 1)])
        l = np.zeros((n, n), bool)
        l[0, 1] = True  # release
        l[2, 1] = True  # wants the freed output
        out = wavefront_reference(l, cfg.b, cfg.output_busy(), cfg.input_busy())
        kinds = {(t.u, t.v): t.establish for t in out.toggles}
        assert kinds == {(0, 1): False, (2, 1): True}

    def test_release_does_not_free_for_earlier_cell(self):
        """A cell before the release in wavefront order still sees it busy."""
        n = 4
        cfg = ConfigMatrix.from_pairs(n, [(2, 1)])
        l = np.zeros((n, n), bool)
        l[2, 1] = True  # release, row 2
        l[0, 1] = True  # establish attempt, row 0 (earlier in the wavefront)
        out = wavefront_reference(l, cfg.b, cfg.output_busy(), cfg.input_busy())
        kinds = {(t.u, t.v): t.establish for t in out.toggles}
        assert kinds == {(2, 1): False}
        assert out.blocked == 1

    def test_row_conflict_one_winner(self):
        """Two establishes in one row: only the first in order wins."""
        n = 4
        l = np.zeros((n, n), bool)
        l[1, 0] = l[1, 3] = True
        b_s = np.zeros((n, n), bool)
        out = wavefront_reference(l, b_s, b_s.any(0), b_s.any(1))
        assert len(out.established) == 1
        assert out.established[0].v == 0  # column order
        assert out.blocked == 1

    def test_column_conflict_one_winner(self):
        n = 4
        l = np.zeros((n, n), bool)
        l[0, 2] = l[3, 2] = True
        b_s = np.zeros((n, n), bool)
        out = wavefront_reference(l, b_s, b_s.any(0), b_s.any(1))
        assert len(out.established) == 1
        assert out.established[0].u == 0  # row order
        assert out.blocked == 1

    def test_full_permutation_in_one_pass(self):
        """An empty slot plus a full-permutation L establishes all N."""
        n = 8
        l = np.zeros((n, n), bool)
        for u in range(n):
            l[u, (u + 3) % n] = True
        b_s = np.zeros((n, n), bool)
        out = wavefront_reference(l, b_s, b_s.any(0), b_s.any(1))
        assert len(out.established) == n
        assert out.blocked == 0


class TestRotation:
    def test_rotation_changes_winner(self):
        n = 4
        l = np.zeros((n, n), bool)
        l[0, 2] = l[3, 2] = True  # column conflict
        b_s = np.zeros((n, n), bool)
        out_fixed = wavefront_reference(l, b_s, b_s.any(0), b_s.any(1), (0, 0))
        out_rot = wavefront_reference(l, b_s, b_s.any(0), b_s.any(1), (3, 0))
        assert out_fixed.established[0].u == 0
        assert out_rot.established[0].u == 3

    def test_rotation_modulo(self):
        n = 4
        l = np.zeros((n, n), bool)
        l[1, 1] = True
        b_s = np.zeros((n, n), bool)
        a = wavefront_reference(l, b_s, b_s.any(0), b_s.any(1), (5, 9))
        b = wavefront_reference(l, b_s, b_s.any(0), b_s.any(1), (1, 1))
        assert [(t.u, t.v) for t in a.toggles] == [(t.u, t.v) for t in b.toggles]


class TestOutcomeHelpers:
    def test_toggle_matrix(self):
        n = 4
        l = np.zeros((n, n), bool)
        l[1, 2] = True
        b_s = np.zeros((n, n), bool)
        out = wavefront_reference(l, b_s, b_s.any(0), b_s.any(1))
        tm = out.toggle_matrix(n)
        assert tm[1, 2] and tm.sum() == 1

    def test_empty_sparse(self):
        n = 4
        b_s = np.zeros((n, n), bool)
        out = _run_sparse(np.zeros((n, n), bool), b_s, b_s.any(0), b_s.any(1))
        assert out.toggles == [] and out.blocked == 0


# -- the big equivalence property ---------------------------------------------


@st.composite
def slot_and_requests(draw, n=8):
    """A random valid slot configuration plus a random request matrix."""
    # random partial permutation for the slot
    perm = draw(st.permutations(list(range(n))))
    keep = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    cfg = ConfigMatrix(n)
    for u, (v, k) in enumerate(zip(perm, keep)):
        if k:
            cfg.establish(u, v)
    r = np.array(
        draw(st.lists(st.lists(st.booleans(), min_size=n, max_size=n),
                      min_size=n, max_size=n)),
        dtype=bool,
    )
    # B* must contain B(s); add some extra established-elsewhere bits
    extra = np.array(
        draw(st.lists(st.lists(st.booleans(), min_size=n, max_size=n),
                      min_size=n, max_size=n)),
        dtype=bool,
    )
    b_star = cfg.b | extra
    rotation = (draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1)))
    return cfg, r, b_star, rotation


@settings(max_examples=200, deadline=None)
@given(slot_and_requests())
def test_sparse_equals_dense_reference(case):
    """The O(nnz) sparse pass is bit-identical to the dense Table-2 oracle."""
    cfg, r, b_star, rotation = case
    pres = compute_l(r, cfg.b, b_star)
    ao, ai = cfg.output_busy(), cfg.input_busy()
    dense = wavefront_reference(pres.l, cfg.b, ao, ai, rotation)
    sparse = _run_sparse(pres.l, cfg.b, ao, ai, rotation)
    assert [(t.u, t.v, t.establish) for t in dense.toggles] == [
        (t.u, t.v, t.establish) for t in sparse.toggles
    ]
    assert dense.blocked == sparse.blocked


@settings(max_examples=200, deadline=None)
@given(slot_and_requests())
def test_pass_output_is_valid_partial_permutation(case):
    """Applying any pass to a valid slot yields a valid slot."""
    cfg, r, b_star, rotation = case
    pres = compute_l(r, cfg.b, b_star)
    out = wavefront_reference(pres.l, cfg.b, cfg.output_busy(), cfg.input_busy(), rotation)
    after = _apply(cfg.b, out)
    assert _valid_partial_permutation(after)


@settings(max_examples=100, deadline=None)
@given(slot_and_requests())
def test_pass_never_releases_requested_connections(case):
    """A connection with its request up is never torn down by a pass."""
    cfg, r, b_star, rotation = case
    pres = compute_l(r, cfg.b, b_star)
    out = wavefront_reference(pres.l, cfg.b, cfg.output_busy(), cfg.input_busy(), rotation)
    for t in out.released:
        assert not r[t.u, t.v]


@settings(max_examples=100, deadline=None)
@given(slot_and_requests())
def test_pass_establishes_only_requested(case):
    cfg, r, b_star, rotation = case
    pres = compute_l(r, cfg.b, b_star)
    out = wavefront_reference(pres.l, cfg.b, cfg.output_busy(), cfg.input_busy(), rotation)
    for t in out.established:
        assert r[t.u, t.v] and not b_star[t.u, t.v]

"""Unit tests for the Markov next-destination prefetcher."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.predict.markov import MarkovPrefetcher
from repro.types import Connection


@pytest.fixture
def pf():
    return MarkovPrefetcher(n=8, hold_ps=1000)


class TestValidation:
    def test_bad_hold(self):
        with pytest.raises(ConfigurationError):
            MarkovPrefetcher(8, hold_ps=0)

    def test_bad_confidence(self):
        with pytest.raises(ConfigurationError):
            MarkovPrefetcher(8, hold_ps=10, min_confidence=1.5)


class TestLearning:
    def test_no_prediction_without_history(self, pf):
        assert pf.predict_next(0, 1) is None

    def test_learns_periodic_sequence(self, pf):
        for t in range(3):
            pf.observe(0, 1, t)
            pf.observe(0, 2, t)
            pf.observe(0, 3, t)
        assert pf.predict_next(0, 1) == 2
        assert pf.predict_next(0, 2) == 3
        assert pf.predict_next(0, 3) == 1

    def test_confidence_threshold(self):
        pf = MarkovPrefetcher(8, hold_ps=1000, min_confidence=0.9)
        # 1 -> 2 half the time, 1 -> 3 the other half: not confident
        for _ in range(4):
            pf.observe(0, 1, 0)
            pf.observe(0, 2, 0)
            pf.observe(0, 1, 0)
            pf.observe(0, 3, 0)
        assert pf.predict_next(0, 1) is None

    def test_sources_independent(self, pf):
        pf.observe(0, 1, 0)
        pf.observe(0, 2, 0)
        assert pf.predict_next(1, 1) is None

    def test_repeated_destination_not_a_transition(self, pf):
        pf.observe(0, 1, 0)
        pf.observe(0, 1, 0)  # same destination again
        assert pf.predict_next(0, 1) is None


class TestPrefetchLifecycle:
    def _train(self, pf):
        for _ in range(3):
            pf.observe(0, 1, 0)
            pf.observe(0, 2, 0)

    def test_prefetch_emits_connection(self, pf):
        self._train(pf)
        conn = pf.prefetch(0, 1, t_ps=100)
        assert conn == Connection(0, 2)
        assert pf.outstanding == 1

    def test_hit_on_correct_next(self, pf):
        self._train(pf)
        pf.prefetch(0, 1, t_ps=100)
        pf.observe(0, 2, 200)
        assert pf.hits == 1 and pf.misses == 0
        assert pf.accuracy() == 1.0

    def test_miss_on_wrong_next(self, pf):
        self._train(pf)
        pf.prefetch(0, 1, t_ps=100)
        pf.observe(0, 5, 200)  # actual next differs
        assert pf.misses == 1
        # the wrong latch is handed back for release
        assert Connection(0, 2) in pf.expired(200)

    def test_timeout_counts_as_miss(self, pf):
        self._train(pf)
        pf.prefetch(0, 1, t_ps=100)
        assert pf.expired(1099) == []
        assert pf.expired(1100) == [Connection(0, 2)]
        assert pf.misses == 1

    def test_no_prefetch_to_self(self):
        pf = MarkovPrefetcher(8, hold_ps=1000)
        pf._transitions[(0, 1)][0] = 5  # degenerate learned self-loop
        assert pf.prefetch(0, 1, 0) is None

    def test_stats(self, pf):
        self._train(pf)
        pf.prefetch(0, 1, 100)
        s = pf.stats()
        assert s["predictions"] == 1 and s["outstanding"] == 1
        assert pf.accuracy() == 0.0  # nothing resolved yet

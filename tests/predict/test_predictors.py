"""Unit tests for the eviction predictors."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.predict.base import NullPredictor
from repro.predict.counter import CounterPredictor
from repro.predict.hints import HintedPredictor, OraclePredictor
from repro.predict.timeout import TimeoutPredictor
from repro.predict.tracker import WorkingSetTracker
from repro.types import Connection


class TestNullPredictor:
    def test_never_holds(self):
        p = NullPredictor()
        p.on_use(0, 1, 100)
        assert p.on_empty(0, 1, 200) is False
        assert p.expired(10_000) == []


class TestTimeoutPredictor:
    def test_positive_timeout_required(self):
        with pytest.raises(ConfigurationError):
            TimeoutPredictor(0)

    def test_holds_then_expires(self):
        p = TimeoutPredictor(1000)
        assert p.on_empty(0, 1, 0) is True
        assert p.expired(999) == []
        assert p.expired(1000) == [Connection(0, 1)]
        assert p.expired(1000) == []  # already evicted

    def test_use_refreshes_deadline(self):
        p = TimeoutPredictor(1000)
        p.on_empty(0, 1, 0)
        p.on_use(0, 1, 900)
        assert p.expired(1000) == []
        assert p.expired(1900) == [Connection(0, 1)]

    def test_use_of_untracked_is_noop(self):
        p = TimeoutPredictor(1000)
        p.on_use(0, 1, 100)
        assert p.expired(10_000) == []

    def test_flush_clears(self):
        p = TimeoutPredictor(1000)
        p.on_empty(0, 1, 0)
        p.on_flush(10)
        assert p.expired(10_000) == []

    def test_forget(self):
        p = TimeoutPredictor(1000)
        p.on_empty(0, 1, 0)
        p.forget(0, 1)
        assert p.expired(10_000) == []

    def test_stats(self):
        p = TimeoutPredictor(1000)
        p.on_empty(0, 1, 0)
        p.expired(2000)
        s = p.stats()
        assert s["holds"] == 1 and s["evictions"] == 1 and s["latched"] == 0


class TestCounterPredictor:
    def test_positive_threshold_required(self):
        with pytest.raises(ConfigurationError):
            CounterPredictor(0)

    def test_evicts_after_other_uses(self):
        p = CounterPredictor(3)
        p.on_empty(0, 1, 0)
        for _ in range(2):
            p.on_use(5, 6, 0)
        assert p.expired(0) == []
        p.on_use(5, 6, 0)
        assert p.expired(0) == [Connection(0, 1)]

    def test_own_use_resets(self):
        p = CounterPredictor(3)
        p.on_empty(0, 1, 0)
        p.on_use(5, 6, 0)
        p.on_use(5, 6, 0)
        p.on_use(0, 1, 0)  # resets the counter
        p.on_use(5, 6, 0)
        p.on_use(5, 6, 0)
        assert p.expired(0) == []

    def test_computation_phase_immunity(self):
        """No other uses -> the latch survives arbitrarily long."""
        p = CounterPredictor(1)
        p.on_empty(0, 1, 0)
        assert p.expired(10**12) == []

    def test_flush_and_forget(self):
        p = CounterPredictor(1)
        p.on_empty(0, 1, 0)
        p.on_flush(0)
        p.on_use(5, 6, 0)
        assert p.expired(0) == []


class TestHintedPredictor:
    def test_pinned_never_evicted(self):
        base = TimeoutPredictor(100)
        p = HintedPredictor(base, pinned={Connection(0, 1)})
        assert p.on_empty(0, 1, 0) is True
        base.on_empty(0, 1, 0)  # even if the base tracks it
        assert Connection(0, 1) not in p.expired(10_000)

    def test_unpinned_delegates(self):
        p = HintedPredictor(TimeoutPredictor(100))
        assert p.on_empty(0, 1, 0) is True
        assert p.expired(200) == [Connection(0, 1)]

    def test_pin_unpin(self):
        p = HintedPredictor(TimeoutPredictor(100))
        p.pin(0, 1)
        p.on_empty(0, 1, 0)
        assert p.expired(10_000) == []
        p.unpin(0, 1)
        p.on_empty(0, 1, 10_000)
        assert p.expired(20_001) == [Connection(0, 1)]

    def test_flush_clears_pins(self):
        p = HintedPredictor(TimeoutPredictor(100), pinned={Connection(0, 1)})
        p.on_flush(0)
        assert p.pinned == set()
        assert p.stats()["flushes"] == 1


class TestOraclePredictor:
    def test_holds_if_reused_soon(self):
        future = [(0, 1), (2, 3), (0, 1)]
        p = OraclePredictor(future, horizon=8)
        p.on_use(0, 1, 0)
        assert p.on_empty(0, 1, 0) is True  # (0,1) appears again

    def test_rejects_if_never_reused(self):
        future = [(0, 1), (2, 3)]
        p = OraclePredictor(future, horizon=8)
        p.on_use(0, 1, 0)
        assert p.on_empty(0, 1, 0) is False

    def test_bad_horizon(self):
        with pytest.raises(ConfigurationError):
            OraclePredictor([], horizon=0)

    def test_expires_when_out_of_horizon(self):
        future = [(0, 1), (0, 1)] + [(2, 3)] * 10
        p = OraclePredictor(future, horizon=2)
        p.on_use(0, 1, 0)
        assert p.on_empty(0, 1, 0) is True
        p.on_use(0, 1, 0)  # consumes the reuse
        assert Connection(0, 1) in p.expired(0) or p.on_empty(0, 1, 0) is False


class TestWorkingSetTracker:
    def test_window_eviction(self):
        t = WorkingSetTracker(8, window_ps=1000)
        t.on_use(0, 1, 0)
        t.on_use(2, 3, 500)
        assert t.sample(900) == 2
        assert t.sample(1400) == 1  # (0,1) aged out

    def test_reuse_refreshes(self):
        t = WorkingSetTracker(8, window_ps=1000)
        t.on_use(0, 1, 0)
        t.on_use(0, 1, 800)
        assert t.sample(1500) == 1

    def test_required_degree(self):
        t = WorkingSetTracker(8, window_ps=10_000)
        t.on_use(0, 1, 0)
        t.on_use(0, 2, 0)
        t.on_use(1, 2, 0)
        assert t.required_degree() == 2

    def test_turnover(self):
        t = WorkingSetTracker(8, window_ps=10_000)
        t.on_use(0, 1, 0)
        assert t.turnover({Connection(0, 1), Connection(2, 3)}) == 0.5
        assert t.turnover(set()) == 0.0

    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            WorkingSetTracker(8, 0)

    def test_history(self):
        t = WorkingSetTracker(8, window_ps=1000)
        t.on_use(0, 1, 0)
        t.sample(10)
        assert t.history == [(10, 1)]

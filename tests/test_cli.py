"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table3_parses(self):
        args = build_parser().parse_args(["table3"])
        assert args.ports == 128

    def test_global_flags(self):
        args = build_parser().parse_args(["--ports", "16", "--seed", "7", "table3"])
        assert args.ports == 16 and args.seed == 7


class TestCommands:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "385" in out

    def test_figure4_subset(self, capsys):
        rc = main(
            [
                "--ports",
                "16",
                "figure4",
                "--sizes",
                "64",
                "--patterns",
                "scatter",
                "--schemes",
                "wormhole",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "scatter" in out and "wormhole" in out

    def test_figure4_csv(self, capsys):
        rc = main(
            [
                "--ports",
                "16",
                "figure4",
                "--sizes",
                "64",
                "--patterns",
                "scatter",
                "--schemes",
                "wormhole",
                "--csv",
            ]
        )
        assert rc == 0
        assert "bytes,wormhole" in capsys.readouterr().out

    def test_compare_subset(self, capsys):
        rc = main(
            [
                "--ports",
                "16",
                "compare",
                "--sizes",
                "64",
                "--patterns",
                "scatter",
                "--schemes",
                "dynamic-tdm,islip",
                "--no-cache",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ranking" in out and "islip" in out and "coverage" in out

    def test_compare_csv(self, capsys):
        rc = main(
            [
                "--ports",
                "16",
                "compare",
                "--sizes",
                "64",
                "--patterns",
                "scatter",
                "--schemes",
                "islip",
                "--csv",
                "--no-cache",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("pattern,scheme,bytes,")
        assert "scatter,islip,64," in out

    def test_compare_report_file(self, tmp_path, capsys):
        out_file = tmp_path / "bakeoff.md"
        rc = main(
            [
                "--ports",
                "16",
                "compare",
                "--sizes",
                "64",
                "--patterns",
                "scatter",
                "--schemes",
                "preload,solstice-tdm",
                "--out",
                str(out_file),
                "--no-cache",
            ]
        )
        assert rc == 0
        assert "wrote bake-off report" in capsys.readouterr().out
        text = out_file.read_text()
        assert text.startswith("# Scheduler bake-off")
        assert "solstice" in text

    def test_figure5(self, capsys):
        rc = main(
            [
                "--ports",
                "16",
                "figure5",
                "--determinism",
                "0.9",
                "--messages",
                "4",
            ]
        )
        assert rc == 0
        assert "preload" in capsys.readouterr().out

    def test_ablations_subset(self, capsys):
        rc = main(["--ports", "16", "ablations", "--only", "a4"])
        assert rc == 0
        assert "guard band" in capsys.readouterr().out

    def test_ablations_unknown(self, capsys):
        rc = main(["--ports", "16", "ablations", "--only", "zz"])
        assert rc == 2

    def test_multihop(self, capsys):
        rc = main(["multihop", "--bytes", "256", "--hops", "1,4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Multi-hop" in out and "wormhole" in out


class TestLoadLatencyCommand:
    def test_load_latency(self, capsys):
        rc = main(
            [
                "--ports",
                "8",
                "load-latency",
                "--loads",
                "0.3",
                "--duration-ns",
                "2000",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency" in out and "wormhole" in out

    def test_load_latency_csv(self, capsys):
        rc = main(
            ["--ports", "8", "load-latency", "--loads", "0.3",
             "--duration-ns", "2000", "--csv"]
        )
        assert rc == 0
        assert "load,wormhole" in capsys.readouterr().out

    def test_faults(self, capsys):
        rc = main(
            ["--ports", "8", "faults", "--rates", "0,8",
             "--schemes", "wormhole,dynamic-tdm", "--messages", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "delivered message fraction" in out and "dynamic-tdm" in out

    def test_faults_csv(self, capsys):
        rc = main(
            ["--ports", "8", "faults", "--rates", "0,8",
             "--schemes", "wormhole", "--messages", "2", "--csv"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults_per_us,wormhole:delivered" in out

    def test_faults_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown schemes"):
            main(["--ports", "8", "faults", "--schemes", "bogus"])


class TestTraceCommand:
    def test_trace_parses(self):
        args = build_parser().parse_args(["trace", "figure4"])
        assert args.format == "chrome" and args.experiment == "figure4"

    def test_trace_jsonl(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        rc = main(
            ["--ports", "8", "trace", "scatter", "--schemes", "wormhole",
             "--bytes", "64", "--format", "jsonl", "-o", str(out)]
        )
        assert rc == 0
        assert "events traced" in capsys.readouterr().out
        from repro.obs import Kind, from_jsonl

        runs = from_jsonl(out)
        assert list(runs) == ["wormhole"]
        kinds = {ev.kind for ev in runs["wormhole"]}
        assert Kind.MSG_INJECT in kinds and Kind.DELIVER in kinds

    def test_trace_chrome_all_schemes(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        rc = main(
            ["--ports", "8", "trace", "figure4", "--bytes", "64",
             "-o", str(out), "--utilization"]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "4 processes" in text and "utilization:" in text
        doc = json.loads(out.read_text())
        procs = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert procs == {"wormhole", "circuit", "dynamic-tdm", "preload"}
        # message spans exist for every scheme (one pid per process)
        span_pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(span_pids) == 4

    def test_trace_profile_prints_counters(self, tmp_path, capsys):
        rc = main(
            ["--ports", "8", "trace", "scatter", "--schemes", "circuit",
             "--bytes", "64", "--format", "csv",
             "-o", str(tmp_path / "t.csv"), "--profile"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "events_executed" in out and "cumulative" in out

    def test_trace_unknown_scheme(self, tmp_path, capsys):
        rc = main(
            ["--ports", "8", "trace", "figure4", "--schemes", "bogus",
             "-o", str(tmp_path / "t.json")]
        )
        assert rc == 2
        assert "unknown scheme" in capsys.readouterr().out


class TestReportCommand:
    def test_quick_report(self, capsys):
        rc = main(["--ports", "16", "report", "--quick"])
        assert rc == 0
        out = capsys.readouterr().out
        for heading in ("Table 3", "Figure 4", "Figure 5", "load vs latency"):
            assert heading in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        rc = main(["--ports", "16", "report", "--quick", "--output", str(target)])
        assert rc == 0
        assert "Reproduction report" in target.read_text()

"""Unit and property tests for the fat-tree fabric constraints."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fabric.config import ConfigMatrix
from repro.fabric.fattree import FatTree


class TestStructure:
    def test_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            FatTree(6)
        with pytest.raises(ConfigurationError):
            FatTree(8, taper=0)

    def test_subtree_of(self):
        ft = FatTree(8)
        assert ft.subtree_of(5, 1) == 2
        assert ft.subtree_of(5, 2) == 1
        assert ft.subtree_of(5, 3) == 0

    def test_subtree_range_checks(self):
        ft = FatTree(8)
        with pytest.raises(ConfigurationError):
            ft.subtree_of(8, 1)
        with pytest.raises(ConfigurationError):
            ft.subtree_of(0, 0)

    def test_edge_capacity_full_bisection(self):
        ft = FatTree(16, taper=1)
        assert ft.edge_capacity(1) == 2
        assert ft.edge_capacity(3) == 8

    def test_edge_capacity_tapered(self):
        ft = FatTree(16, taper=4)
        assert ft.edge_capacity(1) == 1  # floored at 1
        assert ft.edge_capacity(3) == 2

    def test_no_edge_above_root(self):
        ft = FatTree(8)
        with pytest.raises(ConfigurationError):
            ft.edge_capacity(3)

    def test_crossing_level(self):
        ft = FatTree(8)
        assert ft.crossing_level(0, 1) == 1  # siblings
        assert ft.crossing_level(0, 7) == 3  # opposite halves
        assert ft.crossing_level(3, 3) == 0  # loopback crosses nothing


class TestRealizability:
    def test_sibling_traffic_never_blocked(self):
        ft = FatTree(8, taper=8)
        cfg = ConfigMatrix.from_pairs(8, [(0, 1), (2, 3), (4, 5), (6, 7)])
        assert ft.is_realizable(cfg)  # stays below level 1 edges entirely

    def test_full_bisection_realizes_any_permutation(self):
        ft = FatTree(16, taper=1)
        rng = np.random.default_rng(0)
        for _ in range(50):
            perm = [int(x) for x in rng.permutation(16)]
            cfg = ConfigMatrix.from_permutation(perm)
            assert ft.is_realizable(cfg)

    def test_tapered_blocks_cross_traffic(self):
        ft = FatTree(8, taper=4)
        # bit reversal pushes everything through the upper levels
        cfg = ConfigMatrix.from_permutation([7, 6, 5, 4, 3, 2, 1, 0])
        assert not ft.is_realizable(cfg)
        assert ft.overloaded_edges(cfg)

    def test_directions_independent(self):
        """Up and down directions of one edge do not contend."""
        ft = FatTree(8, taper=8)  # every upward edge has capacity 1
        # (0 -> 4) uses 'up' on 0's side; (5 -> 1) uses 'down' on 1's side:
        # the level-1/2 edges above {0,1} carry one connection per direction
        cfg = ConfigMatrix.from_pairs(8, [(0, 4), (5, 1)])
        assert ft.is_realizable(cfg)

    def test_same_direction_contends(self):
        ft = FatTree(8, taper=8)
        # both connections go up from the {0,1} subtree
        cfg = ConfigMatrix.from_pairs(8, [(0, 4), (1, 5)])
        assert not ft.is_realizable(cfg)


class TestDegreesAndPartition:
    def test_required_degree_empty(self):
        assert FatTree(8).required_degree([]) == 0

    def test_required_degree_bit_reversal(self):
        ft = FatTree(8, taper=4)
        cfg = ConfigMatrix.from_permutation([7, 6, 5, 4, 3, 2, 1, 0])
        assert ft.required_degree(cfg.connections()) == 4

    def test_partition_covers_and_is_realizable(self):
        ft = FatTree(8, taper=4)
        cfg = ConfigMatrix.from_permutation([7, 6, 5, 4, 3, 2, 1, 0])
        passes = ft.partition(cfg)
        union = set()
        for p in passes:
            assert ft.is_realizable(p)
            union |= {tuple(c) for c in p.connections()}
        assert union == {tuple(c) for c in cfg.connections()}

    def test_partition_meets_lower_bound(self):
        ft = FatTree(8, taper=4)
        cfg = ConfigMatrix.from_permutation([7, 6, 5, 4, 3, 2, 1, 0])
        assert len(ft.partition(cfg)) >= ft.required_degree(cfg.connections())

    def test_partition_of_realizable_is_single_pass(self):
        ft = FatTree(8, taper=1)
        cfg = ConfigMatrix.from_permutation([1, 0, 3, 2, 5, 4, 7, 6])
        assert len(ft.partition(cfg)) == 1


class TestEdgeLoads:
    """Per-edge load accounting under taper > 1 (the thinned upper levels)."""

    def test_loads_count_both_directions(self):
        ft = FatTree(8, taper=2)
        loads = ft.edge_loads([(0, 4), (1, 5)])
        # both connections climb out of the {0,1} subtree and descend into
        # the sibling pair {4,5}: every edge on the route carries both
        assert loads == {
            (1, 0, "up"): 2,
            (2, 0, "up"): 2,
            (2, 1, "down"): 2,
            (1, 2, "down"): 2,
        }

    def test_sibling_traffic_loads_nothing(self):
        ft = FatTree(8, taper=4)
        assert ft.edge_loads([(0, 1), (6, 7)]) == {}

    def test_taper_shrinks_capacity_not_load(self):
        """Taper scales capacity only: the same connection set loads the
        same edges, but realisability flips as capacity thins."""
        conns = [(0, 4), (1, 5), (2, 6), (3, 7)]
        full = FatTree(8, taper=1)
        thin = FatTree(8, taper=4)
        assert full.edge_loads(conns) == thin.edge_loads(conns)
        cfg = ConfigMatrix.from_pairs(8, conns)
        assert full.is_realizable(cfg)
        assert not thin.is_realizable(cfg)

    def test_overload_names_the_thinned_edge(self):
        ft = FatTree(8, taper=4)  # level-1 edges have capacity 1
        cfg = ConfigMatrix.from_pairs(8, [(0, 4), (1, 5)])
        assert (1, 0, "up") in ft.overloaded_edges(cfg)


class TestRequiredDegreeBound:
    """The multiplexing-degree lower bound (TDM passes a set needs)."""

    def test_bound_is_load_over_capacity(self):
        ft = FatTree(8, taper=4)
        # 4 connections up through a capacity-1 level-1 edge -> 2 passes
        # is impossible; ceil(2/1) = 2 for the {0,1} subtree pair
        assert ft.required_degree([(0, 4), (1, 5)]) == 2

    def test_bound_monotone_in_taper(self):
        conns = list(
            ConfigMatrix.from_permutation([7, 6, 5, 4, 3, 2, 1, 0]).connections()
        )
        degrees = [FatTree(8, taper=t).required_degree(conns) for t in (1, 2, 4, 8)]
        assert degrees == sorted(degrees)
        assert degrees[0] == 1  # full bisection realises any permutation

    def test_bound_never_exceeds_partition(self):
        rng = np.random.default_rng(7)
        for taper in (2, 4, 8):
            ft = FatTree(16, taper=taper)
            perm = [int(x) for x in rng.permutation(16)]
            cfg = ConfigMatrix.from_permutation(perm)
            assert ft.required_degree(cfg.connections()) <= len(ft.partition(cfg))


@settings(max_examples=60, deadline=None)
@given(st.permutations(list(range(16))), st.integers(1, 8))
def test_property_partition_sound(perm, taper):
    """Any permutation partitions into realisable passes covering it."""
    ft = FatTree(16, taper=taper)
    cfg = ConfigMatrix.from_permutation(list(perm))
    passes = ft.partition(cfg)
    union = set()
    for p in passes:
        assert ft.is_realizable(p)
        union |= {tuple(c) for c in p.connections()}
    assert union == {tuple(c) for c in cfg.connections()}
    assert len(passes) >= ft.required_degree(cfg.connections())

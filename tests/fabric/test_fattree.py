"""Unit and property tests for the fat-tree fabric constraints."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fabric.config import ConfigMatrix
from repro.fabric.fattree import FatTree


class TestStructure:
    def test_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            FatTree(6)
        with pytest.raises(ConfigurationError):
            FatTree(8, taper=0)

    def test_subtree_of(self):
        ft = FatTree(8)
        assert ft.subtree_of(5, 1) == 2
        assert ft.subtree_of(5, 2) == 1
        assert ft.subtree_of(5, 3) == 0

    def test_subtree_range_checks(self):
        ft = FatTree(8)
        with pytest.raises(ConfigurationError):
            ft.subtree_of(8, 1)
        with pytest.raises(ConfigurationError):
            ft.subtree_of(0, 0)

    def test_edge_capacity_full_bisection(self):
        ft = FatTree(16, taper=1)
        assert ft.edge_capacity(1) == 2
        assert ft.edge_capacity(3) == 8

    def test_edge_capacity_tapered(self):
        ft = FatTree(16, taper=4)
        assert ft.edge_capacity(1) == 1  # floored at 1
        assert ft.edge_capacity(3) == 2

    def test_no_edge_above_root(self):
        ft = FatTree(8)
        with pytest.raises(ConfigurationError):
            ft.edge_capacity(3)

    def test_crossing_level(self):
        ft = FatTree(8)
        assert ft.crossing_level(0, 1) == 1  # siblings
        assert ft.crossing_level(0, 7) == 3  # opposite halves
        assert ft.crossing_level(3, 3) == 0  # loopback crosses nothing


class TestRealizability:
    def test_sibling_traffic_never_blocked(self):
        ft = FatTree(8, taper=8)
        cfg = ConfigMatrix.from_pairs(8, [(0, 1), (2, 3), (4, 5), (6, 7)])
        assert ft.is_realizable(cfg)  # stays below level 1 edges entirely

    def test_full_bisection_realizes_any_permutation(self):
        ft = FatTree(16, taper=1)
        rng = np.random.default_rng(0)
        for _ in range(50):
            perm = [int(x) for x in rng.permutation(16)]
            cfg = ConfigMatrix.from_permutation(perm)
            assert ft.is_realizable(cfg)

    def test_tapered_blocks_cross_traffic(self):
        ft = FatTree(8, taper=4)
        # bit reversal pushes everything through the upper levels
        cfg = ConfigMatrix.from_permutation([7, 6, 5, 4, 3, 2, 1, 0])
        assert not ft.is_realizable(cfg)
        assert ft.overloaded_edges(cfg)

    def test_directions_independent(self):
        """Up and down directions of one edge do not contend."""
        ft = FatTree(8, taper=8)  # every upward edge has capacity 1
        # (0 -> 4) uses 'up' on 0's side; (5 -> 1) uses 'down' on 1's side:
        # the level-1/2 edges above {0,1} carry one connection per direction
        cfg = ConfigMatrix.from_pairs(8, [(0, 4), (5, 1)])
        assert ft.is_realizable(cfg)

    def test_same_direction_contends(self):
        ft = FatTree(8, taper=8)
        # both connections go up from the {0,1} subtree
        cfg = ConfigMatrix.from_pairs(8, [(0, 4), (1, 5)])
        assert not ft.is_realizable(cfg)


class TestDegreesAndPartition:
    def test_required_degree_empty(self):
        assert FatTree(8).required_degree([]) == 0

    def test_required_degree_bit_reversal(self):
        ft = FatTree(8, taper=4)
        cfg = ConfigMatrix.from_permutation([7, 6, 5, 4, 3, 2, 1, 0])
        assert ft.required_degree(cfg.connections()) == 4

    def test_partition_covers_and_is_realizable(self):
        ft = FatTree(8, taper=4)
        cfg = ConfigMatrix.from_permutation([7, 6, 5, 4, 3, 2, 1, 0])
        passes = ft.partition(cfg)
        union = set()
        for p in passes:
            assert ft.is_realizable(p)
            union |= {tuple(c) for c in p.connections()}
        assert union == {tuple(c) for c in cfg.connections()}

    def test_partition_meets_lower_bound(self):
        ft = FatTree(8, taper=4)
        cfg = ConfigMatrix.from_permutation([7, 6, 5, 4, 3, 2, 1, 0])
        assert len(ft.partition(cfg)) >= ft.required_degree(cfg.connections())

    def test_partition_of_realizable_is_single_pass(self):
        ft = FatTree(8, taper=1)
        cfg = ConfigMatrix.from_permutation([1, 0, 3, 2, 5, 4, 7, 6])
        assert len(ft.partition(cfg)) == 1


@settings(max_examples=60, deadline=None)
@given(st.permutations(list(range(16))), st.integers(1, 8))
def test_property_partition_sound(perm, taper):
    """Any permutation partitions into realisable passes covering it."""
    ft = FatTree(16, taper=taper)
    cfg = ConfigMatrix.from_permutation(list(perm))
    passes = ft.partition(cfg)
    union = set()
    for p in passes:
        assert ft.is_realizable(p)
        union |= {tuple(c) for c in p.connections()}
    assert union == {tuple(c) for c in cfg.connections()}
    assert len(passes) >= ft.required_degree(cfg.connections())

"""Unit and property tests for the multistage fabric extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fabric.config import ConfigMatrix
from repro.fabric.multistage import BenesNetwork, OmegaNetwork, is_power_of_two


class TestHelpers:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(8)
        assert not is_power_of_two(6)
        assert not is_power_of_two(0)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            OmegaNetwork(6)
        with pytest.raises(ConfigurationError):
            BenesNetwork(12)


class TestOmega:
    def test_route_length(self):
        om = OmegaNetwork(8)
        assert len(om.route(0, 5)) == 3  # log2(8) stages

    def test_route_out_of_range(self):
        with pytest.raises(ConfigurationError):
            OmegaNetwork(8).route(0, 8)

    def test_identity_is_realizable(self):
        om = OmegaNetwork(8)
        cfg = ConfigMatrix.from_permutation(list(range(8)))
        assert om.is_realizable(cfg)

    def test_shuffle_conflict_detected(self):
        """Omega networks block some permutations; find one by search."""
        om = OmegaNetwork(8)
        blocked = None
        rng = np.random.default_rng(0)
        for _ in range(200):
            perm = rng.permutation(8)
            cfg = ConfigMatrix.from_permutation([int(x) for x in perm])
            if not om.is_realizable(cfg):
                blocked = cfg
                break
        assert blocked is not None, "no blocked permutation found (wrong model?)"

    def test_single_connection_never_conflicts(self):
        om = OmegaNetwork(16)
        for dst in range(16):
            cfg = ConfigMatrix.from_pairs(16, [(3, dst)])
            assert om.is_realizable(cfg)

    def test_partition_covers_everything(self):
        om = OmegaNetwork(8)
        cfg = ConfigMatrix.from_permutation([3, 7, 0, 4, 1, 5, 2, 6])
        passes = om.partition(cfg)
        union = set()
        for p in passes:
            assert om.is_realizable(p)
            union |= {tuple(c) for c in p.connections()}
        assert union == {tuple(c) for c in cfg.connections()}

    def test_partition_of_realizable_is_single_pass(self):
        om = OmegaNetwork(8)
        cfg = ConfigMatrix.from_permutation(list(range(8)))
        assert len(om.partition(cfg)) == 1


class TestBenes:
    def test_stage_count(self):
        assert BenesNetwork(8).n_stages == 5

    def test_identity_routed(self):
        bn = BenesNetwork(8)
        perm = list(range(8))
        stages = bn.route_permutation(perm)
        assert bn.verify(perm, stages)

    def test_reversal_routed(self):
        bn = BenesNetwork(8)
        perm = list(reversed(range(8)))
        stages = bn.route_permutation(perm)
        assert bn.verify(perm, stages)

    def test_swap_pairs(self):
        bn = BenesNetwork(4)
        perm = [1, 0, 3, 2]
        assert bn.verify(perm, bn.route_permutation(perm))

    def test_two_port_base_case(self):
        bn = BenesNetwork(2)
        assert bn.verify([1, 0], bn.route_permutation([1, 0]))
        assert bn.verify([0, 1], bn.route_permutation([0, 1]))

    def test_partial_permutation_rejected(self):
        with pytest.raises(ConfigurationError):
            BenesNetwork(4).route_permutation([1, 0, 3, 3])

    def test_complete_partial(self):
        full = BenesNetwork.complete_partial(np.array([2, -1, 0, -1]))
        assert sorted(full) == [0, 1, 2, 3]
        assert full[0] == 2 and full[2] == 0

    def test_any_partial_config_realizable(self):
        bn = BenesNetwork(8)
        cfg = ConfigMatrix.from_pairs(8, [(0, 5), (3, 2)])
        assert bn.is_realizable(cfg)

    @settings(max_examples=60, deadline=None)
    @given(st.permutations(list(range(8))))
    def test_every_permutation_routes_n8(self, perm):
        bn = BenesNetwork(8)
        stages = bn.route_permutation(list(perm))
        assert bn.verify(list(perm), stages)

    @settings(max_examples=30, deadline=None)
    @given(st.permutations(list(range(16))))
    def test_every_permutation_routes_n16(self, perm):
        bn = BenesNetwork(16)
        stages = bn.route_permutation(list(perm))
        assert bn.verify(list(perm), stages)

"""Unit and property tests for ConfigMatrix."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fabric.config import ConfigMatrix


class TestConstruction:
    def test_empty(self):
        cfg = ConfigMatrix(4)
        assert cfg.is_empty
        assert len(cfg) == 0

    def test_zero_ports_rejected(self):
        with pytest.raises(ConfigurationError):
            ConfigMatrix(0)

    def test_from_pairs(self):
        cfg = ConfigMatrix.from_pairs(4, [(0, 1), (2, 3)])
        assert (0, 1) in cfg and (2, 3) in cfg
        assert len(cfg) == 2

    def test_from_pairs_conflict_rejected(self):
        with pytest.raises(ConfigurationError):
            ConfigMatrix.from_pairs(4, [(0, 1), (0, 2)])
        with pytest.raises(ConfigurationError):
            ConfigMatrix.from_pairs(4, [(0, 1), (2, 1)])

    def test_from_permutation(self):
        cfg = ConfigMatrix.from_permutation([1, 0, 3, 2])
        assert len(cfg) == 4
        assert cfg.output_of(0) == 1 and cfg.output_of(3) == 2

    def test_from_partial_permutation(self):
        cfg = ConfigMatrix.from_permutation([2, -1, 0, -1])
        assert len(cfg) == 2
        assert cfg.output_of(1) is None

    def test_from_matrix(self):
        m = np.zeros((3, 3), dtype=bool)
        m[0, 2] = True
        cfg = ConfigMatrix.from_matrix(m)
        assert (0, 2) in cfg

    def test_from_matrix_rejects_nonsquare(self):
        with pytest.raises(ConfigurationError):
            ConfigMatrix.from_matrix(np.zeros((2, 3), dtype=bool))

    def test_from_matrix_rejects_conflict(self):
        m = np.zeros((3, 3), dtype=bool)
        m[0, 1] = m[0, 2] = True
        with pytest.raises(ConfigurationError):
            ConfigMatrix.from_matrix(m)


class TestMutation:
    def test_establish_release(self):
        cfg = ConfigMatrix(4)
        cfg.establish(1, 2)
        assert (1, 2) in cfg
        cfg.release(1, 2)
        assert (1, 2) not in cfg
        assert cfg.is_empty

    def test_establish_busy_input(self):
        cfg = ConfigMatrix(4)
        cfg.establish(1, 2)
        with pytest.raises(ConfigurationError):
            cfg.establish(1, 3)

    def test_establish_busy_output(self):
        cfg = ConfigMatrix(4)
        cfg.establish(1, 2)
        with pytest.raises(ConfigurationError):
            cfg.establish(0, 2)

    def test_release_missing(self):
        with pytest.raises(ConfigurationError):
            ConfigMatrix(4).release(0, 0)

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ConfigMatrix(4).establish(0, 4)

    def test_toggle(self):
        cfg = ConfigMatrix(4)
        assert cfg.toggle(0, 1) is True
        assert (0, 1) in cfg
        assert cfg.toggle(0, 1) is False
        assert cfg.is_empty

    def test_clear(self):
        cfg = ConfigMatrix.from_permutation([1, 0])
        cfg.clear()
        assert cfg.is_empty
        cfg.check_invariants()

    def test_load(self):
        a = ConfigMatrix.from_pairs(4, [(0, 1)])
        b = ConfigMatrix.from_pairs(4, [(2, 3), (3, 2)])
        a.load(b)
        assert a == b
        assert len(a) == 2

    def test_load_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            ConfigMatrix(4).load(ConfigMatrix(8))


class TestQueries:
    def test_grants_are_copy(self):
        cfg = ConfigMatrix.from_pairs(4, [(0, 1)])
        g = cfg.grants()
        g[0, 1] = False
        assert (0, 1) in cfg

    def test_busy_vectors(self):
        cfg = ConfigMatrix.from_pairs(4, [(1, 3)])
        assert list(cfg.input_busy()) == [False, True, False, False]
        assert list(cfg.output_busy()) == [False, False, False, True]

    def test_connections_ordered_by_input(self):
        cfg = ConfigMatrix.from_pairs(4, [(2, 0), (0, 3)])
        assert [tuple(c) for c in cfg.connections()] == [(0, 3), (2, 0)]

    def test_input_output_of(self):
        cfg = ConfigMatrix.from_pairs(4, [(1, 2)])
        assert cfg.output_of(1) == 2
        assert cfg.input_of(2) == 1
        assert cfg.input_of(0) is None

    def test_copy_independent(self):
        a = ConfigMatrix.from_pairs(4, [(0, 1)])
        b = a.copy()
        b.release(0, 1)
        assert (0, 1) in a

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(ConfigMatrix(4))

    def test_eq_different_size(self):
        assert ConfigMatrix(4) != ConfigMatrix(5)


@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
        max_size=30,
    )
)
def test_random_operation_sequences_hold_invariants(ops):
    """Establish/toggle/release in any legal order keeps the matrix valid."""
    cfg = ConfigMatrix(8)
    for u, v in ops:
        if (u, v) in cfg:
            cfg.release(u, v)
        elif cfg.output_of(u) is None and cfg.input_of(v) is None:
            cfg.establish(u, v)
        cfg.check_invariants()
    # row/column sums never exceed 1
    assert cfg.b.sum(axis=0).max(initial=0) <= 1
    assert cfg.b.sum(axis=1).max(initial=0) <= 1

"""Unit tests for the configuration register file (B* maintenance)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SchedulingError
from repro.fabric.config import ConfigMatrix
from repro.fabric.registers import ConfigRegisterFile


class TestBasics:
    def test_construction(self):
        regs = ConfigRegisterFile(4, 3)
        assert regs.k == 3
        assert not regs.b_star.any()

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            ConfigRegisterFile(4, 0)

    def test_slot_range_checked(self):
        regs = ConfigRegisterFile(4, 2)
        with pytest.raises(SchedulingError):
            regs.establish(2, 0, 1)
        with pytest.raises(SchedulingError):
            _ = regs[5]

    def test_establish_updates_bstar(self):
        regs = ConfigRegisterFile(4, 2)
        regs.establish(0, 1, 2)
        assert regs.b_star[1, 2]
        assert regs.slot_of(1, 2) == 0

    def test_release_updates_bstar(self):
        regs = ConfigRegisterFile(4, 2)
        regs.establish(0, 1, 2)
        regs.release(0, 1, 2)
        assert not regs.b_star[1, 2]
        assert regs.slot_of(1, 2) is None

    def test_same_connection_two_slots(self):
        """The multi-slot extension: B* counts both instances."""
        regs = ConfigRegisterFile(4, 2)
        regs.establish(0, 1, 2)
        regs.establish(1, 1, 2)
        assert regs.b_star[1, 2]
        assert regs.slots_of(1, 2) == [0, 1]
        regs.release(0, 1, 2)
        assert regs.b_star[1, 2]  # still present in slot 1
        regs.release(1, 1, 2)
        assert not regs.b_star[1, 2]

    def test_toggle(self):
        regs = ConfigRegisterFile(4, 2)
        assert regs.toggle(0, 1, 2) is True
        assert regs.toggle(0, 1, 2) is False
        assert not regs.b_star[1, 2]


class TestLoadAndPin:
    def test_load_replaces_and_counts(self):
        regs = ConfigRegisterFile(4, 2)
        regs.establish(0, 0, 1)
        cfg = ConfigMatrix.from_pairs(4, [(2, 3)])
        regs.load(0, cfg)
        assert not regs.b_star[0, 1]
        assert regs.b_star[2, 3]
        regs.check_invariants()

    def test_pin_and_dynamic_slots(self):
        regs = ConfigRegisterFile(4, 3)
        regs.load(0, ConfigMatrix.from_pairs(4, [(0, 1)]), pin=True)
        assert regs.pinned == {0}
        assert regs.dynamic_slots() == [1, 2]

    def test_load_unpinned_clears_pin(self):
        regs = ConfigRegisterFile(4, 2)
        regs.load(0, ConfigMatrix(4), pin=True)
        regs.load(0, ConfigMatrix(4), pin=False)
        assert regs.pinned == set()

    def test_clear_slot(self):
        regs = ConfigRegisterFile(4, 2)
        regs.load(1, ConfigMatrix.from_pairs(4, [(0, 1)]), pin=True)
        regs.clear_slot(1)
        assert regs[1].is_empty
        assert 1 not in regs.pinned
        assert not regs.b_star.any()

    def test_flush(self):
        regs = ConfigRegisterFile(4, 3)
        regs.establish(0, 0, 1)
        regs.load(1, ConfigMatrix.from_pairs(4, [(2, 3)]), pin=True)
        regs.flush()
        assert not regs.b_star.any()
        assert regs.pinned == set()
        assert regs.active_slots() == []


class TestQueries:
    def test_active_slots(self):
        regs = ConfigRegisterFile(4, 3)
        regs.establish(2, 0, 1)
        assert regs.active_slots() == [2]

    def test_all_connections(self):
        regs = ConfigRegisterFile(4, 2)
        regs.establish(0, 0, 1)
        regs.establish(1, 2, 3)
        assert regs.all_connections() == {(0, 1), (2, 3)}

    def test_presence_counts_copy(self):
        regs = ConfigRegisterFile(4, 2)
        regs.establish(0, 0, 1)
        counts = regs.presence_counts()
        counts[0, 1] = 9
        assert regs.presence_counts()[0, 1] == 1


@given(
    st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 5), st.integers(0, 5)),
        max_size=40,
    )
)
def test_bstar_always_matches_slots(ops):
    """Property: B* == OR of slot matrices after any toggle sequence."""
    regs = ConfigRegisterFile(6, 3)
    for slot, u, v in ops:
        cfg = regs[slot]
        if cfg.b[u, v] or (cfg.output_of(u) is None and cfg.input_of(v) is None):
            regs.toggle(slot, u, v)
    regs.check_invariants()
    expected = np.zeros((6, 6), dtype=bool)
    for cfg in regs:
        expected |= cfg.b
    assert np.array_equal(regs.b_star, expected)

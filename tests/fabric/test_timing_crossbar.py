"""Unit tests for fabric timing models and the passive crossbar."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fabric.config import ConfigMatrix
from repro.fabric.crossbar import Crossbar
from repro.fabric.timing import FabricTechnology, FabricTiming
from repro.params import PAPER_PARAMS


class TestFabricTiming:
    def test_digital_uses_10ns_hop(self):
        t = FabricTiming.digital(PAPER_PARAMS)
        assert t.switch_hop_ps == 10_000
        assert t.technology is FabricTechnology.DIGITAL

    def test_lvds_hop_neglected(self):
        t = FabricTiming.lvds(PAPER_PARAMS)
        assert t.switch_hop_ps == 0
        assert not t.needs_switch_serdes

    def test_optical_matches_lvds(self):
        lvds = FabricTiming.lvds(PAPER_PARAMS)
        opt = FabricTiming.optical(PAPER_PARAMS)
        assert opt.switch_hop_ps == lvds.switch_hop_ps

    def test_lvds_end_to_end_is_120ns(self):
        # 10 + 30 + 20 + 0 + 20 + 30 + 10
        assert FabricTiming.lvds(PAPER_PARAMS).end_to_end_ps(PAPER_PARAMS) == 120_000

    def test_digital_end_to_end_is_130ns(self):
        # 10 + 30 + 20 + 10 + 20 + 30 + 10
        assert (
            FabricTiming.digital(PAPER_PARAMS).end_to_end_ps(PAPER_PARAMS) == 130_000
        )

    def test_switch_serdes_adds_two_conversions(self):
        t = FabricTiming(FabricTechnology.DIGITAL, 10_000, True)
        base = FabricTiming(FabricTechnology.DIGITAL, 10_000, False)
        diff = t.end_to_end_ps(PAPER_PARAMS) - base.end_to_end_ps(PAPER_PARAMS)
        assert diff == 2 * PAPER_PARAMS.serdes_ps

    def test_negative_hop_rejected(self):
        with pytest.raises(ConfigurationError):
            FabricTiming(FabricTechnology.LVDS, -1, False)


class TestCrossbar:
    def test_apply_configuration(self):
        params = PAPER_PARAMS.with_overrides(n_ports=4)
        xbar = Crossbar(params, FabricTiming.lvds(params))
        cfg = ConfigMatrix.from_pairs(4, [(0, 1), (2, 3)])
        xbar.apply(cfg)
        assert xbar.connected(0, 1)
        assert not xbar.connected(1, 0)
        assert xbar.reconfigurations == 1

    def test_reconfiguration_counter(self):
        params = PAPER_PARAMS.with_overrides(n_ports=4)
        xbar = Crossbar(params, FabricTiming.lvds(params))
        for _ in range(3):
            xbar.apply(ConfigMatrix(4))
        assert xbar.reconfigurations == 3

    def test_transfer_window_matches_slot_bytes(self):
        params = PAPER_PARAMS.with_overrides(n_ports=4)
        xbar = Crossbar(params, FabricTiming.lvds(params))
        assert xbar.transfer_window_ps() == params.slot_bytes * params.byte_ps

    def test_negative_reconfig_rejected(self):
        params = PAPER_PARAMS.with_overrides(n_ports=4)
        with pytest.raises(ConfigurationError):
            Crossbar(params, FabricTiming.lvds(params), reconfig_ps=-1)

    def test_path_latency_by_technology(self):
        params = PAPER_PARAMS.with_overrides(n_ports=4)
        lvds = Crossbar(params, FabricTiming.lvds(params))
        digital = Crossbar(params, FabricTiming.digital(params))
        assert digital.path_latency_ps() - lvds.path_latency_ps() == 10_000

"""Unit tests for static patterns, preload programs, and phase analyses."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compiled.directives import (
    FlushDirective,
    LoadBatchDirective,
    PreloadProgram,
)
from repro.compiled.patterns import StaticPattern
from repro.compiled.phases import (
    partition_by_degree,
    phase_boundaries,
    working_set_series,
)
from repro.errors import ConfigurationError
from repro.fabric.config import ConfigMatrix
from repro.types import Connection


class TestStaticPattern:
    def test_from_permutation(self):
        pat = StaticPattern.from_permutation([1, 2, 0])
        assert len(pat) == 3
        assert pat.is_permutation
        assert pat.degree == 1

    def test_partial_permutation(self):
        pat = StaticPattern.from_permutation([2, -1, -1])
        assert len(pat) == 1

    def test_self_connection_rejected(self):
        with pytest.raises(ConfigurationError):
            StaticPattern(4, [(1, 1)])

    def test_union(self):
        a = StaticPattern(4, [(0, 1)])
        b = StaticPattern(4, [(1, 2)])
        assert len(a.union(b)) == 2

    def test_union_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            StaticPattern(4).union(StaticPattern(5))

    def test_intersection(self):
        a = StaticPattern(4, [(0, 1), (1, 2)])
        b = StaticPattern(4, [(1, 2), (2, 3)])
        assert b.intersection(a).conns == {Connection(1, 2)}

    def test_compile_covers(self):
        pat = StaticPattern(4, [(0, 1), (0, 2), (1, 2)])
        configs = pat.compile()
        assert len(configs) == pat.degree == 2
        union = set()
        for cfg in configs:
            union |= set(cfg.connections())
        assert union == pat.conns

    def test_compile_batched(self):
        n = 6
        pat = StaticPattern(n, [(u, v) for u in range(n) for v in range(n) if u != v])
        batches = pat.compile_batched(2)
        assert all(len(b) <= 2 for b in batches)
        assert sum(len(b) for b in batches) == n - 1

    def test_compile_batched_bad_k(self):
        with pytest.raises(ConfigurationError):
            StaticPattern(4).compile_batched(0)

    def test_from_config_roundtrip(self):
        cfg = ConfigMatrix.from_pairs(4, [(0, 1), (2, 3)])
        pat = StaticPattern.from_config(cfg)
        assert pat.conns == {Connection(0, 1), Connection(2, 3)}


class TestPreloadProgram:
    def test_compile(self):
        pat = StaticPattern(4, [(0, 1), (0, 2), (1, 3)])
        prog = PreloadProgram.compile(pat, k_preload=1)
        assert prog.n_batches == pat.degree
        assert prog.covered == pat.conns

    def test_single_batch(self):
        pat = StaticPattern.from_permutation([1, 0, 3, 2])
        prog = PreloadProgram.compile(pat, k_preload=2)
        assert prog.is_single_batch

    def test_batch_connections(self):
        pat = StaticPattern(4, [(0, 1), (1, 0)])
        prog = PreloadProgram.compile(pat, k_preload=1)
        assert prog.batch_connections(0) <= pat.conns

    def test_oversized_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            PreloadProgram(n=4, k_preload=1, batches=[[ConfigMatrix(4), ConfigMatrix(4)]])

    def test_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            PreloadProgram(n=4, k_preload=1, batches=[[ConfigMatrix(5)]])

    def test_directive_types(self):
        assert FlushDirective()
        with pytest.raises(ConfigurationError):
            LoadBatchDirective(configs=())


class TestPartitionByDegree:
    def test_single_phase_when_fits(self):
        trace = [(0, 1), (1, 2), (2, 3)]
        phases = partition_by_degree(trace, 4, k=2)
        assert len(phases) == 1

    def test_cuts_on_degree_overflow(self):
        trace = [(0, 1), (0, 2), (0, 3)]  # degree grows at source 0
        phases = partition_by_degree(trace, 4, k=2)
        assert len(phases) == 2
        assert phases[0] == {Connection(0, 1), Connection(0, 2)}

    def test_duplicates_free(self):
        trace = [(0, 1)] * 10
        assert len(partition_by_degree(trace, 4, k=1)) == 1

    def test_every_phase_within_degree(self):
        trace = [(u, v) for u in range(6) for v in range(6) if u != v]
        for k in (1, 2, 3):
            for phase in partition_by_degree(trace, 6, k=k):
                pat = StaticPattern(6, phase)
                assert pat.degree <= k

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            partition_by_degree([], 4, k=0)

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            partition_by_degree([(0, 9)], 4, k=1)


class TestWorkingSetSeries:
    def test_constant_trace(self):
        trace = [(0, 1)] * 10
        assert working_set_series(trace, 4) == [1] * 7

    def test_growing(self):
        trace = [(0, 1), (1, 2), (2, 3), (3, 0)]
        assert working_set_series(trace, 2) == [2, 2, 2]

    def test_short_trace(self):
        assert working_set_series([(0, 1)], 4) == []

    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            working_set_series([], 0)

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=5, max_size=50))
    def test_property_bounded_by_window(self, trace):
        series = working_set_series(trace, 5)
        assert all(1 <= s <= 5 for s in series)


class TestPhaseBoundaries:
    def test_detects_pattern_switch(self):
        phase_a = [(0, 1), (1, 2), (2, 3), (3, 0)] * 5
        phase_b = [(0, 2), (1, 3), (2, 0), (3, 1)] * 5
        bounds = phase_boundaries(phase_a + phase_b, window=4)
        assert any(abs(b - len(phase_a)) <= 4 for b in bounds)

    def test_uniform_trace_no_boundaries(self):
        trace = [(0, 1), (1, 2)] * 20
        assert phase_boundaries(trace, window=4) == []

    def test_short_trace(self):
        assert phase_boundaries([(0, 1)] * 3, window=4) == []

    def test_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            phase_boundaries([], 4, jump_fraction=0.0)

"""Unit tests for the compiled-communication frontend."""

from __future__ import annotations

import pytest

from repro.compiled.frontend import (
    AllToAll,
    Gather,
    Loop,
    Scatter,
    Seq,
    Shift,
    Stencil,
    Unknown,
    compile_program,
)
from repro.errors import ConfigurationError
from repro.networks.tdm import TdmNetwork
from repro.params import PAPER_PARAMS
from repro.types import Connection

N = 16


class TestStatements:
    def test_shift_connections(self):
        conns = Shift(1).connections(4)
        assert conns == {(0, 1), (1, 2), (2, 3), (3, 0)}

    def test_shift_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            Shift(4).connections(4)

    def test_stencil_has_four_per_node(self):
        conns = Stencil().connections(N)
        assert len(conns) == 4 * N

    def test_gather_scatter_duals(self):
        g = Gather(root=3).connections(N)
        s = Scatter(root=3).connections(N)
        assert {c.reversed() for c in g} == s

    def test_alltoall_complete(self):
        assert len(AllToAll().connections(4)) == 12

    def test_unknown_not_static(self):
        u = Unknown(pairs=((0, 1), (2, 3)))
        assert not u.static
        assert u.connections(4) == {Connection(0, 1), Connection(2, 3)}

    def test_messages_match_connections(self):
        for stmt in (Shift(2), Stencil(), Gather(), Scatter(), AllToAll()):
            conns = stmt.connections(N)
            msg_conns = {m.connection for m in stmt.messages(N, 64)}
            assert msg_conns == conns


class TestPhaseFormation:
    def test_loop_becomes_phase(self):
        prog = Loop(trips=10, body=(Stencil(),))
        sched = compile_program(prog, N, k_preload=4)
        assert len(sched.phases) == 1
        assert sched.phases[0].trips == 10

    def test_consecutive_statements_coalesce(self):
        prog = Seq(body=(Shift(1), Shift(2)))
        sched = compile_program(prog, N, k_preload=4)
        assert len(sched.phases) == 1
        assert sched.phases[0].working_set_size == 2 * N

    def test_loop_splits_phases(self):
        prog = Seq(body=(Shift(1), Loop(trips=4, body=(Stencil(),)), Shift(2)))
        sched = compile_program(prog, N, k_preload=4)
        assert len(sched.phases) == 3

    def test_nested_loops_fold(self):
        prog = Loop(trips=2, body=(Loop(trips=3, body=(Shift(1),)),))
        sched = compile_program(prog, N, k_preload=4)
        assert len(sched.phases) == 1
        # working set is still one shift permutation
        assert sched.phases[0].working_set_size == N

    def test_bad_trips(self):
        with pytest.raises(ConfigurationError):
            Loop(trips=0, body=(Shift(1),))


class TestAnalysis:
    def test_degrees(self):
        sched = compile_program(Seq(body=(Stencil(),)), N, k_preload=4)
        assert sched.phases[0].optimal_degree == 4
        sched = compile_program(Seq(body=(Gather(),)), N, k_preload=4)
        assert sched.phases[0].optimal_degree == N - 1

    def test_unknown_goes_dynamic(self):
        prog = Seq(body=(Shift(1), Unknown(pairs=((0, 2),))))
        sched = compile_program(prog, N, k_preload=4)
        phase = sched.phases[0]
        assert Connection(0, 1) in phase.static_conns
        assert Connection(0, 2) in phase.dynamic_conns
        assert Connection(0, 2) not in phase.static_conns

    def test_preload_program_sized_to_budget(self):
        sched = compile_program(Seq(body=(Stencil(),)), N, k_preload=2)
        prog = sched.phases[0].program
        assert prog is not None
        assert prog.n_batches == 2  # degree 4 / budget 2

    def test_max_batches_heuristic(self):
        sched = compile_program(
            Seq(body=(Gather(),)), N, k_preload=2, max_batches=2
        )
        phase = sched.phases[0]
        assert phase.program is None  # too big to preload
        assert phase.static_conns == set()
        assert len(phase.dynamic_conns) == N - 1

    def test_flush_on_working_set_change(self):
        prog = Seq(
            body=(
                Loop(trips=2, body=(Shift(1),)),
                Loop(trips=2, body=(Shift(2),)),
            )
        )
        sched = compile_program(prog, N, k_preload=2)
        assert sched.flush_points == [1]

    def test_no_flush_when_covered(self):
        prog = Seq(
            body=(
                Loop(trips=2, body=(Shift(1),)),
                Loop(trips=2, body=(Shift(1),)),  # same working set
            )
        )
        sched = compile_program(prog, N, k_preload=2)
        assert sched.flush_points == []

    def test_bad_k_preload(self):
        with pytest.raises(ConfigurationError):
            compile_program(Seq(body=(Shift(1),)), N, k_preload=0)


class TestEndToEnd:
    def test_schedule_runs_on_tdm_network(self):
        params = PAPER_PARAMS.with_overrides(n_ports=N)
        prog = Seq(
            body=(
                Loop(trips=2, body=(Stencil(),)),
                Loop(trips=2, body=(Shift(1), Shift(2))),
            )
        )
        sched = compile_program(prog, N, k_preload=2)
        phases = sched.to_traffic(size_bytes=64)
        net = TdmNetwork(params, k=4, mode="hybrid", k_preload=2)
        result = net.run(phases, pattern_name="compiled")
        expected = 2 * 4 * N + 2 * 2 * N
        assert len(result.records) == expected

    def test_traffic_seq_unique(self):
        sched = compile_program(
            Seq(body=(Shift(1), Loop(trips=2, body=(Shift(2),)))), N, k_preload=1
        )
        phases = sched.to_traffic(32)
        seqs = [m.seq for p in phases for m in p.messages]
        assert len(seqs) == len(set(seqs))

    def test_trips_multiply_messages(self):
        sched = compile_program(Loop(trips=5, body=(Shift(1),)), N, k_preload=1)
        phases = sched.to_traffic(32)
        assert len(phases[0].messages) == 5 * N

"""Unit and property tests for the bipartite edge colouring compiler."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiled.coloring import (
    connection_degree,
    decompose,
    edge_color,
    packed_decompose,
    verify_coloring,
    weighted_degree,
)
from repro.errors import ConfigurationError


class TestDegree:
    def test_empty(self):
        assert connection_degree([], 4) == 0

    def test_permutation_degree_one(self):
        conns = [(u, (u + 1) % 4) for u in range(4)]
        assert connection_degree(conns, 4) == 1

    def test_fanout(self):
        conns = [(0, v) for v in range(1, 4)]
        assert connection_degree(conns, 4) == 3

    def test_fanin(self):
        conns = [(u, 0) for u in range(1, 4)]
        assert connection_degree(conns, 4) == 3

    def test_all_to_all(self):
        n = 6
        conns = [(u, v) for u in range(n) for v in range(n) if u != v]
        assert connection_degree(conns, n) == n - 1


class TestEdgeColor:
    def test_empty(self):
        assert edge_color([], 4) == {}

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigurationError):
            edge_color([(0, 1), (0, 1)], 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            edge_color([(0, 4)], 4)

    def test_single_edge(self):
        col = edge_color([(0, 1)], 4)
        assert col == {(0, 1): 0}

    def test_star_uses_delta_colors(self):
        conns = [(0, v) for v in range(1, 5)]
        col = edge_color(conns, 5)
        assert verify_coloring(col, conns)
        assert len(set(col.values())) == 4

    def test_all_to_all_optimal(self):
        n = 6
        conns = [(u, v) for u in range(n) for v in range(n) if u != v]
        col = edge_color(conns, n)
        assert verify_coloring(col, conns)
        assert max(col.values()) + 1 == n - 1  # exactly Δ colours (König)

    def test_kempe_chain_needed_case(self):
        """A case where the first free colours at u and v differ."""
        conns = [(0, 1), (2, 1), (2, 3), (0, 3), (0, 2), (1, 3)]
        col = edge_color(conns, 4)
        assert verify_coloring(col, conns)
        assert max(col.values()) + 1 == connection_degree(conns, 4)


class TestDecompose:
    def test_configs_are_valid_and_cover(self):
        conns = [(0, 1), (1, 2), (2, 0), (0, 2)]
        configs = decompose(conns, 3)
        assert len(configs) == connection_degree(conns, 3)
        union = set()
        for cfg in configs:
            cfg.check_invariants()
            union |= {tuple(c) for c in cfg.connections()}
        assert union == set(conns)

    def test_empty(self):
        assert decompose([], 4) == []


class TestVerifyColoring:
    def test_detects_conflict(self):
        assert not verify_coloring({(0, 1): 0, (0, 2): 0}, [(0, 1), (0, 2)])

    def test_detects_missing_edge(self):
        assert not verify_coloring({(0, 1): 0}, [(0, 1), (2, 3)])


@st.composite
def connection_sets(draw, n=10):
    pairs = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=n * n // 2,
        )
    )
    return [p for p in pairs]


@settings(max_examples=150, deadline=None)
@given(connection_sets())
def test_property_coloring_proper_and_optimal(conns):
    """Any connection set colours properly with exactly Δ colours."""
    n = 10
    col = edge_color(conns, n)
    assert verify_coloring(col, conns)
    delta = connection_degree(conns, n)
    if conns:
        assert max(col.values()) + 1 <= delta  # König: never more than Δ


@st.composite
def dense_asymmetric_sets(draw, n=8):
    """Dense connection sets biased toward high, *lopsided* degrees —
    a few hub ports carrying Δ >= 4 while the rest stay sparse.  This is
    the regime where the Kempe chain has to walk long alternating paths
    through the hubs; the corpus pins the recolouring there."""
    hubs = draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=3, unique=True))
    conns = set()
    for hub in hubs:
        outs = draw(
            st.sets(st.integers(0, n - 1), min_size=4, max_size=n)
        )
        conns |= {(hub, v) for v in outs}
        ins = draw(
            st.sets(st.integers(0, n - 1), min_size=4, max_size=n)
        )
        conns |= {(u, hub) for u in ins}
    extra = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=n * 2,
        )
    )
    return sorted(conns | extra)


@settings(max_examples=200, deadline=None)
@given(dense_asymmetric_sets())
def test_property_dense_asymmetric_kempe(conns):
    """Δ >= 4 hub-heavy graphs colour properly with exactly Δ colours."""
    n = 8
    col = edge_color(conns, n)
    assert verify_coloring(col, conns)
    delta = connection_degree(conns, n)
    assert delta >= 4
    assert max(col.values()) + 1 == delta


class TestPackedDecompose:
    def test_empty(self):
        assert packed_decompose([], 4) == []
        assert decompose([], 4, coloring="packed") == []

    def test_unweighted_matches_plain_coverage(self):
        conns = [(0, 1), (1, 2), (2, 0), (0, 2)]
        configs = packed_decompose(conns, 3)
        union = set()
        for cfg in configs:
            cfg.check_invariants()
            union |= {tuple(c) for c in cfg.connections()}
        assert union == set(conns)

    def test_heavy_edges_replicated(self):
        """An edge with dominant demand occupies most configurations."""
        conns = [(0, 1), (0, 2), (1, 0)]
        demand = {(0, 1): 800, (0, 2): 100, (1, 0): 100}
        configs = packed_decompose(conns, 3, demand=demand, max_weight=8)
        hits = sum((0, 1) in {tuple(c) for c in cfg.connections()} for cfg in configs)
        assert hits >= len(configs) // 2
        # every edge still appears at least once
        union = set()
        for cfg in configs:
            union |= {tuple(c) for c in cfg.connections()}
        assert union == set(conns)

    def test_length_is_weighted_degree(self):
        conns = [(0, 1), (0, 2)]
        demand = {(0, 1): 300, (0, 2): 100}
        configs = packed_decompose(conns, 3, demand=demand, max_weight=4)
        # scaled to {4, 2}, gcd-reduced to {2, 1}: port 0 carries 3 shares
        weights = {(0, 1): 2, (0, 2): 1}
        assert weighted_degree(weights, 3) == 3
        assert len(configs) == 3

    def test_unknown_coloring_rejected(self):
        with pytest.raises(ConfigurationError):
            decompose([(0, 1)], 4, coloring="rainbow")

    @settings(max_examples=100, deadline=None)
    @given(connection_sets())
    def test_property_packed_valid_and_covering(self, conns):
        """Packed configs are valid partial permutations covering every
        edge at least once, with the plain contract left untouched."""
        n = 10
        demand = {e: (i % 7 + 1) * 10 for i, e in enumerate(sorted(conns))}
        configs = decompose(conns, n, coloring="packed", demand=demand)
        union = set()
        for cfg in configs:
            cfg.check_invariants()
            union |= {tuple(c) for c in cfg.connections()}
        assert union == set(conns)
        # the exact-Δ contract of the default path is unchanged
        assert len(decompose(conns, n)) == connection_degree(conns, n)


@settings(max_examples=50, deadline=None)
@given(connection_sets())
def test_property_matches_networkx_bound(conns):
    """Cross-check Δ against networkx's max degree on the bipartite graph."""
    if not conns:
        return
    g = nx.Graph()
    g.add_edges_from(((("in", u), ("out", v)) for u, v in conns))
    nx_delta = max(d for _, d in g.degree())
    assert connection_degree(conns, 10) == nx_delta
    configs = decompose(conns, 10)
    assert len(configs) == nx_delta

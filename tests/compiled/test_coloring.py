"""Unit and property tests for the bipartite edge colouring compiler."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiled.coloring import (
    connection_degree,
    decompose,
    edge_color,
    verify_coloring,
)
from repro.errors import ConfigurationError


class TestDegree:
    def test_empty(self):
        assert connection_degree([], 4) == 0

    def test_permutation_degree_one(self):
        conns = [(u, (u + 1) % 4) for u in range(4)]
        assert connection_degree(conns, 4) == 1

    def test_fanout(self):
        conns = [(0, v) for v in range(1, 4)]
        assert connection_degree(conns, 4) == 3

    def test_fanin(self):
        conns = [(u, 0) for u in range(1, 4)]
        assert connection_degree(conns, 4) == 3

    def test_all_to_all(self):
        n = 6
        conns = [(u, v) for u in range(n) for v in range(n) if u != v]
        assert connection_degree(conns, n) == n - 1


class TestEdgeColor:
    def test_empty(self):
        assert edge_color([], 4) == {}

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigurationError):
            edge_color([(0, 1), (0, 1)], 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            edge_color([(0, 4)], 4)

    def test_single_edge(self):
        col = edge_color([(0, 1)], 4)
        assert col == {(0, 1): 0}

    def test_star_uses_delta_colors(self):
        conns = [(0, v) for v in range(1, 5)]
        col = edge_color(conns, 5)
        assert verify_coloring(col, conns)
        assert len(set(col.values())) == 4

    def test_all_to_all_optimal(self):
        n = 6
        conns = [(u, v) for u in range(n) for v in range(n) if u != v]
        col = edge_color(conns, n)
        assert verify_coloring(col, conns)
        assert max(col.values()) + 1 == n - 1  # exactly Δ colours (König)

    def test_kempe_chain_needed_case(self):
        """A case where the first free colours at u and v differ."""
        conns = [(0, 1), (2, 1), (2, 3), (0, 3), (0, 2), (1, 3)]
        col = edge_color(conns, 4)
        assert verify_coloring(col, conns)
        assert max(col.values()) + 1 == connection_degree(conns, 4)


class TestDecompose:
    def test_configs_are_valid_and_cover(self):
        conns = [(0, 1), (1, 2), (2, 0), (0, 2)]
        configs = decompose(conns, 3)
        assert len(configs) == connection_degree(conns, 3)
        union = set()
        for cfg in configs:
            cfg.check_invariants()
            union |= {tuple(c) for c in cfg.connections()}
        assert union == set(conns)

    def test_empty(self):
        assert decompose([], 4) == []


class TestVerifyColoring:
    def test_detects_conflict(self):
        assert not verify_coloring({(0, 1): 0, (0, 2): 0}, [(0, 1), (0, 2)])

    def test_detects_missing_edge(self):
        assert not verify_coloring({(0, 1): 0}, [(0, 1), (2, 3)])


@st.composite
def connection_sets(draw, n=10):
    pairs = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=n * n // 2,
        )
    )
    return [p for p in pairs]


@settings(max_examples=150, deadline=None)
@given(connection_sets())
def test_property_coloring_proper_and_optimal(conns):
    """Any connection set colours properly with exactly Δ colours."""
    n = 10
    col = edge_color(conns, n)
    assert verify_coloring(col, conns)
    delta = connection_degree(conns, n)
    if conns:
        assert max(col.values()) + 1 <= delta  # König: never more than Δ


@settings(max_examples=50, deadline=None)
@given(connection_sets())
def test_property_matches_networkx_bound(conns):
    """Cross-check Δ against networkx's max degree on the bipartite graph."""
    if not conns:
        return
    g = nx.Graph()
    g.add_edges_from(((("in", u), ("out", v)) for u, v in conns))
    nx_delta = max(d for _, d in g.degree())
    assert connection_degree(conns, 10) == nx_delta
    configs = decompose(conns, 10)
    assert len(configs) == nx_delta

"""Unit tests for core types and system parameters."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.params import PAPER_PARAMS, SystemParams
from repro.types import (
    Connection,
    Message,
    MessageRecord,
    validate_connection,
    validate_port,
)


class TestConnection:
    def test_fields(self):
        c = Connection(3, 7)
        assert c.src == 3 and c.dst == 7

    def test_reversed(self):
        assert Connection(3, 7).reversed() == Connection(7, 3)

    def test_is_tuple(self):
        assert Connection(1, 2) == (1, 2)

    def test_validate_port_ok(self):
        assert validate_port(5, 8) == 5

    def test_validate_port_range(self):
        with pytest.raises(ConfigurationError):
            validate_port(8, 8)
        with pytest.raises(ConfigurationError):
            validate_port(-1, 8)

    def test_validate_port_type(self):
        with pytest.raises(ConfigurationError):
            validate_port(True, 8)

    def test_validate_connection(self):
        validate_connection(Connection(0, 7), 8)
        with pytest.raises(ConfigurationError):
            validate_connection(Connection(0, 8), 8)


class TestMessage:
    def test_remaining_initialised(self):
        m = Message(src=0, dst=1, size=64)
        assert m.remaining == 64

    def test_connection_property(self):
        assert Message(src=2, dst=5, size=8).connection == Connection(2, 5)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            Message(src=0, dst=1, size=0)

    def test_self_message_rejected(self):
        with pytest.raises(ConfigurationError):
            Message(src=1, dst=1, size=8)

    def test_negative_inject_rejected(self):
        with pytest.raises(ConfigurationError):
            Message(src=0, dst=1, size=8, inject_ps=-5)


class TestMessageRecord:
    def test_latency_and_service(self):
        r = MessageRecord(
            src=0, dst=1, size=64, inject_ps=0, start_ps=100, done_ps=300, seq=0
        )
        assert r.latency_ps == 300
        assert r.service_ps == 200

    def test_time_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            MessageRecord(
                src=0, dst=1, size=64, inject_ps=50, start_ps=10, done_ps=300, seq=0
            )
        with pytest.raises(ConfigurationError):
            MessageRecord(
                src=0, dst=1, size=64, inject_ps=0, start_ps=100, done_ps=50, seq=0
            )


class TestSystemParams:
    def test_paper_defaults(self):
        p = PAPER_PARAMS
        assert p.n_ports == 128
        assert p.byte_ps == 1250
        assert p.slot_bytes == 80
        assert p.pipe_latency_ps == 120_000  # 10+30+20+0+20+30+10 ns
        assert p.circuit_setup_ps == 240_000
        assert p.wormhole_head_path_ps == 60_000
        assert p.wormhole_exit_path_ps == 60_000

    def test_guard_band_shrinks_slot(self):
        p = PAPER_PARAMS.with_overrides(guard_band_frac=0.05)
        assert p.slot_bytes == 76

    def test_slots_for(self):
        p = PAPER_PARAMS
        assert p.slots_for(1) == 1
        assert p.slots_for(80) == 1
        assert p.slots_for(81) == 2
        assert p.slots_for(2048) == 26

    def test_message_bytes_ps(self):
        assert PAPER_PARAMS.message_bytes_ps(80) == 100_000

    def test_with_overrides_validates(self):
        with pytest.raises(ConfigurationError):
            PAPER_PARAMS.with_overrides(n_ports=1)

    def test_bad_guard_band(self):
        with pytest.raises(ConfigurationError):
            SystemParams(guard_band_frac=1.0)

    def test_worm_flit_divisibility(self):
        with pytest.raises(ConfigurationError):
            SystemParams(worm_max_bytes=100, flit_bytes=8)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemParams(cable_ps=-1)

    def test_immutable(self):
        with pytest.raises(Exception):
            PAPER_PARAMS.n_ports = 64  # type: ignore[misc]

"""The repo's own lint gates, run as tests so they cannot rot.

``tools/check_construction.py`` enforces two boundaries:

* concrete scheme classes (TdmNetwork, CircuitNetwork, WormholeNetwork)
  may only be constructed inside ``src/repro/networks/`` and ``tests/``
  — everything else resolves through
  ``repro.networks.registry.build_network``;
* ``multiprocessing`` / ``ProcessPoolExecutor`` may only appear inside
  ``src/repro/exec/`` and ``tests/`` — all process fan-out goes through
  ``repro.exec.map_cells``.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CHECKER = REPO / "tools" / "check_construction.py"


def _run(*args: str) -> subprocess.CompletedProcess[str]:
    return subprocess.run(
        [sys.executable, str(CHECKER), *args], capture_output=True, text=True
    )


def test_repo_has_no_direct_scheme_construction():
    proc = _run()
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_checker_flags_a_direct_construction(tmp_path):
    bad = tmp_path / "rogue.py"
    bad.write_text(
        "from repro.networks.tdm import TdmNetwork\n"
        "net = TdmNetwork(params, k=4, mode='dynamic')\n"
    )
    proc = _run(str(tmp_path))
    assert proc.returncode == 1
    assert "rogue.py:2" in proc.stdout
    assert "TdmNetwork" in proc.stdout


def test_checker_flags_attribute_construction(tmp_path):
    bad = tmp_path / "rogue.py"
    bad.write_text(
        "import repro.networks.circuit as c\nnet = c.CircuitNetwork(params)\n"
    )
    proc = _run(str(tmp_path))
    assert proc.returncode == 1
    assert "CircuitNetwork" in proc.stdout


def test_checker_ignores_registry_style_code(tmp_path):
    ok = tmp_path / "fine.py"
    ok.write_text(
        "from repro.networks.registry import RunSpec, build_network\n"
        "net = build_network(RunSpec('dynamic-tdm', params))\n"
    )
    proc = _run(str(tmp_path))
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_checker_flags_multiprocessing_import(tmp_path):
    bad = tmp_path / "rogue.py"
    bad.write_text("import multiprocessing\npool = multiprocessing.Pool(4)\n")
    proc = _run(str(tmp_path))
    assert proc.returncode == 1
    assert "rogue.py:1" in proc.stdout
    assert "multiprocessing" in proc.stdout
    assert "repro.exec.map_cells" in proc.stdout


def test_checker_flags_from_multiprocessing_import(tmp_path):
    bad = tmp_path / "rogue.py"
    bad.write_text("from multiprocessing import Pool\n")
    proc = _run(str(tmp_path))
    assert proc.returncode == 1
    assert "rogue.py:1" in proc.stdout


def test_checker_flags_process_pool_executor(tmp_path):
    bad = tmp_path / "rogue.py"
    bad.write_text(
        "from concurrent.futures import ProcessPoolExecutor\n"
        "with ProcessPoolExecutor() as pool:\n    pass\n"
    )
    proc = _run(str(tmp_path))
    assert proc.returncode == 1
    assert "ProcessPoolExecutor" in proc.stdout


def test_checker_allows_thread_pool_executor(tmp_path):
    # the boundary is about *process* fan-out; thread pools carry no
    # seed/reset determinism hazard and stay legal everywhere
    ok = tmp_path / "fine.py"
    ok.write_text(
        "from concurrent.futures import ThreadPoolExecutor\n"
        "with ThreadPoolExecutor() as pool:\n    pass\n"
    )
    proc = _run(str(tmp_path))
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_repro_exec_is_exempt_from_the_pool_rule():
    # the engine itself obviously uses ProcessPoolExecutor; the default
    # run (exercised above) must not flag it
    engine = REPO / "src" / "repro" / "exec" / "engine.py"
    assert "ProcessPoolExecutor" in engine.read_text()

"""Chaos-soak harness tests: invariants, determinism, artifact output."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.service.soak import SoakConfig, SoakReport, build_service, run_soak

# short enough for CI, long enough to see faults + both overload bursts
_SECONDS = 2.0


def _cfg(**overrides) -> SoakConfig:
    base = dict(seed=7, seconds=_SECONDS, max_wall_s=60.0)
    base.update(overrides)
    return SoakConfig(**base)


@pytest.fixture(scope="module")
def soak_report() -> SoakReport:
    return run_soak(_cfg())


class TestSoakCampaign:
    def test_invariants_hold_under_chaos(self, soak_report):
        assert soak_report.violations == []
        assert soak_report.ok

    def test_faults_were_actually_injected(self, soak_report):
        applied = sum(
            v for k, v in soak_report.fault_counters.items() if k.startswith("applied_")
        )
        assert applied > 0

    def test_load_was_actually_offered(self, soak_report):
        assert soak_report.arrivals > 100
        assert soak_report.granted > 0
        assert soak_report.availability >= 0.55
        assert soak_report.snapshots > 10

    def test_summary_is_human_readable(self, soak_report):
        text = soak_report.summary()
        assert "seed=7" in text
        assert "availability" in text
        assert "invariants: all hold" in text

    def test_report_json_is_stable(self, soak_report):
        obj = json.loads(soak_report.to_json())
        assert list(obj)[:3] == ["seed", "horizon_ps", "arrivals"]
        assert obj["violations"] == []


class TestSoakDeterminism:
    def test_bit_identical_artifacts_across_runs(self, tmp_path):
        dir_a = tmp_path / "a"
        dir_b = tmp_path / "b"
        report_a = run_soak(_cfg(seconds=1.0, out_dir=str(dir_a), trace=True))
        report_b = run_soak(_cfg(seconds=1.0, out_dir=str(dir_b), trace=True))
        assert report_a.to_json() == report_b.to_json()
        for name in ("slo.jsonl", "report.json", "soak-trace.json"):
            assert (dir_a / name).read_bytes() == (dir_b / name).read_bytes(), name

    def test_different_seeds_diverge(self):
        a = run_soak(_cfg(seconds=0.5))
        b = run_soak(_cfg(seconds=0.5, seed=8))
        assert a.to_json() != b.to_json()


class TestSoakConfig:
    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            SoakConfig(seed=1, seconds=0)
        with pytest.raises(ConfigurationError):
            SoakConfig(seed=1, fault_rate_per_us=-1.0)

    def test_build_service_preloads_predictions(self):
        service, arrivals = build_service(_cfg(seconds=0.5))
        assert arrivals
        assert service.fabric.preloaded_pairs  # the prediction oracle fed preload

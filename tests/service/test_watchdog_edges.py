"""Watchdog edge cases under service load (fault x lifecycle races).

Two races the lifecycle watchdogs must survive without leaking state:

* a watchdog check that fires while the lease it guards is being
  released — the release must win cleanly (no retry storm, no shed);
* a *double* fault (transient outage, then permanent death) on a port
  that still has a queued admission request — the request must resolve
  to REJECTED_DEAD exactly once and every watchdog must disarm.
"""

from __future__ import annotations

from repro.faults.injector import FaultInjector
from repro.faults.model import FaultEvent, FaultKind
from repro.faults.schedule import FaultSchedule
from repro.networks.lifecycle import ConnectionManager
from repro.params import SystemParams
from repro.service.core import SwitchService
from repro.service.invariants import check_invariants
from repro.service.model import Outcome, ServiceConfig
from repro.service.workload import Arrival
from repro.sim.clock import ns, us


def _service(events: tuple[FaultEvent, ...], **cfg_overrides) -> SwitchService:
    cfg = ServiceConfig(k=4, window_ps=us(10), availability_floor=0.0, **cfg_overrides)
    injector = FaultInjector(FaultSchedule(events))
    return SwitchService(cfg, SystemParams(n_ports=8), faults=injector)


class TestWatchdogVsRelease:
    def test_watchdog_fires_while_release_in_flight(self, monkeypatch):
        # The lease's circuit is destroyed in a way the dynamic scheduler
        # cannot repair (SL cell dead, then every slot's contents evicted
        # by parity corruption), so the armed watchdog genuinely fires its
        # retry checks — and while they are in flight, the hold expires
        # and the release runs.  The watchdog must then observe a resolved
        # pair and disarm without shedding or writing the lease off.
        events = tuple(
            [FaultEvent(time_ps=ns(1_000), kind=FaultKind.SL_DEAD, src=0, dst=1)]
            + [
                FaultEvent(time_ps=ns(1_200) + 10 * s, kind=FaultKind.REG_CORRUPT, slot=s)
                for s in range(4)
            ]
        )
        service = _service(events)
        fires: list[int] = []
        orig_fire = ConnectionManager._watch_fire

        def spy(mgr, *args, **kwargs):
            fires.append(service.sim.now)
            return orig_fire(mgr, *args, **kwargs)

        monkeypatch.setattr(ConnectionManager, "_watch_fire", spy)
        # grant at ~240 ns; hold ends at ~2240 ns, between watchdog checks
        service.run_campaign([Arrival(time_ps=0, src=0, dst=1, hold_ps=ns(2_000))])
        req = service.requests[0]
        release_ps = req.grant_ps + req.hold_ps
        assert any(t < release_ps for t in fires)  # fired before the release...
        assert any(t >= release_ps for t in fires)  # ...and observed it resolved
        assert req.outcome is Outcome.GRANTED
        assert req.released
        assert service.slo.shed == 0
        assert service.broken_leases == 0
        assert service.lifecycle.watch_count == 0
        assert check_invariants(service) == []

    def test_release_of_written_off_lease_is_benign(self):
        # Port death writes the lease off (broken_leases), then the
        # still-scheduled hold-expiry release fires on the dead lease.
        events = (FaultEvent(time_ps=ns(1_000), kind=FaultKind.LINK_FAIL, port=1),)
        service = _service(events)
        service.run_campaign([Arrival(time_ps=0, src=0, dst=1, hold_ps=us(5))])
        req = service.requests[0]
        assert req.outcome is Outcome.GRANTED  # it *was* granted before the fault
        assert req.released  # the ledger still balances
        assert service.broken_leases == 1
        assert check_invariants(service) == []


class TestDoubleFaultOnQueuedPort:
    def test_transient_then_permanent_with_request_queued(self):
        # t=0: submit from port 3 (request wire lands t=80ns, watchdog arms)
        # t=100ns: transient outage on port 3 (first fault, while queued)
        # t=200ns: permanent death on port 3 (second fault, still queued —
        #          the grant wire would only deliver at ~240ns)
        events = (
            FaultEvent(
                time_ps=ns(100),
                kind=FaultKind.LINK_TRANSIENT,
                port=3,
                duration_ps=ns(500),
            ),
            FaultEvent(time_ps=ns(200), kind=FaultKind.LINK_FAIL, port=3),
        )
        service = _service(events)
        service.run_campaign([Arrival(time_ps=0, src=3, dst=5, hold_ps=us(2))])
        req = service.requests[0]
        assert req.outcome is Outcome.REJECTED_DEAD
        assert service.slo.rejected_dead == 1
        assert service.queues.total == 0  # dequeued exactly once, no underflow
        assert service.lifecycle.watch_count == 0  # disarm_port cleaned up
        assert service.leases == {}
        assert check_invariants(service) == []

    def test_double_fault_spares_other_ports(self):
        events = (
            FaultEvent(
                time_ps=ns(100),
                kind=FaultKind.LINK_TRANSIENT,
                port=3,
                duration_ps=ns(500),
            ),
            FaultEvent(time_ps=ns(200), kind=FaultKind.LINK_FAIL, port=3),
        )
        service = _service(events)
        service.run_campaign(
            [
                Arrival(time_ps=0, src=3, dst=5, hold_ps=us(2)),
                Arrival(time_ps=0, src=0, dst=1, hold_ps=us(2)),
                Arrival(time_ps=ns(400), src=6, dst=7, hold_ps=us(2)),
            ]
        )
        outcomes = {r.pair: r.outcome for r in service.requests}
        assert outcomes[(3, 5)] is Outcome.REJECTED_DEAD
        assert outcomes[(0, 1)] is Outcome.GRANTED
        assert outcomes[(6, 7)] is Outcome.GRANTED
        assert check_invariants(service) == []

    def test_late_arrival_on_dead_port_rejected_at_submit(self):
        events = (
            FaultEvent(
                time_ps=ns(100),
                kind=FaultKind.LINK_TRANSIENT,
                port=3,
                duration_ps=ns(500),
            ),
            FaultEvent(time_ps=ns(200), kind=FaultKind.LINK_FAIL, port=3),
        )
        service = _service(events)
        service.run_campaign(
            [
                Arrival(time_ps=0, src=3, dst=5, hold_ps=us(2)),
                # arrives after the port died: the front door rejects it
                Arrival(time_ps=ns(300), src=5, dst=3, hold_ps=us(2)),
            ]
        )
        assert [r.outcome for r in service.requests] == [
            Outcome.REJECTED_DEAD,
            Outcome.REJECTED_DEAD,
        ]
        assert service.queues.total == 0
        assert check_invariants(service) == []

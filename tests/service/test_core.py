"""Campaign-level tests of the deterministic service core."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultEvent, FaultKind
from repro.faults.schedule import FaultSchedule
from repro.params import SystemParams
from repro.service.core import SwitchService
from repro.service.invariants import check_invariants
from repro.service.model import Outcome, ServiceConfig
from repro.service.workload import Arrival, WorkloadSpec
from repro.sim.clock import ns, us


def _service(faults: FaultInjector | None = None, n_ports: int = 8, **cfg_overrides):
    cfg = ServiceConfig(k=4, window_ps=us(10), **cfg_overrides)
    params = SystemParams(n_ports=n_ports)
    return SwitchService(cfg, params, faults=faults)


def _uniform_arrivals(seed: int = 7, duration_ps: int = us(100)) -> tuple[Arrival, ...]:
    spec = WorkloadSpec(
        kind="poisson",
        n_ports=8,
        rate_per_s=500_000.0,
        mean_hold_ps=us(2),
        duration_ps=duration_ps,
    )
    return spec.generate(seed)


class TestFaultFreeCampaign:
    def test_everything_granted_and_released(self):
        service = _service()
        arrivals = _uniform_arrivals()
        service.run_campaign(arrivals)
        assert service.slo.arrivals == len(arrivals) > 0
        assert service.slo.granted == len(arrivals)
        assert service.slo.shed == 0
        assert service.slo.released == len(arrivals)
        assert all(r.outcome is Outcome.GRANTED and r.released for r in service.requests)
        assert check_invariants(service) == []

    def test_latencies_positive_and_snapshots_emitted(self):
        service = _service()
        service.run_campaign(_uniform_arrivals())
        p50, p99 = service.slo.latency_percentiles()
        assert 0 < p50 <= p99
        assert service.slo.snapshots
        assert service.slo.snapshots[-1].cum_granted == service.slo.granted

    def test_campaign_is_deterministic(self):
        arrivals = _uniform_arrivals()
        a = _service()
        a.run_campaign(arrivals)
        b = _service()
        b.run_campaign(arrivals)
        assert a.slo.to_jsonl() == b.slo.to_jsonl()
        assert a.stats() == b.stats()


class TestAdmissionPaths:
    def test_queue_full_sheds(self):
        service = _service(queue_depth=1, availability_floor=0.0)
        # a burst of distinct pairs from one source port at the same instant
        arrivals = [Arrival(time_ps=100, src=0, dst=1 + i, hold_ps=us(1)) for i in range(4)]
        service.run_campaign(arrivals)
        outcomes = [r.outcome for r in service.requests]
        assert outcomes.count(Outcome.SHED_QUEUE_FULL) == 3
        assert outcomes.count(Outcome.GRANTED) == 1
        assert service.queues.refused == 3
        assert check_invariants(service) == []

    def test_token_bucket_throttles(self):
        # 1 token burst, negligible refill: second arrival has no token
        service = _service(bucket_rate_per_s=1.0, bucket_burst=1, availability_floor=0.0)
        arrivals = [
            Arrival(time_ps=100, src=0, dst=1, hold_ps=us(1)),
            Arrival(time_ps=200, src=2, dst=3, hold_ps=us(1)),
        ]
        service.run_campaign(arrivals)
        assert [r.outcome for r in service.requests] == [
            Outcome.GRANTED,
            Outcome.SHED_THROTTLE,
        ]
        assert check_invariants(service) == []

    def test_same_pair_shares_resident_circuit(self):
        service = _service()
        arrivals = [
            Arrival(time_ps=100, src=0, dst=1, hold_ps=us(10)),
            # arrives while the first lease holds the circuit
            Arrival(time_ps=us(2), src=0, dst=1, hold_ps=us(10)),
        ]
        service.run_campaign(arrivals)
        assert all(r.outcome is Outcome.GRANTED for r in service.requests)
        assert service.resident_hits == 1
        # the sharing request is granted at wire latency, no scheduler wait
        assert service.requests[1].latency_ps == service.params.request_wire_ps
        assert check_invariants(service) == []

    def test_dead_endpoint_rejected_at_the_door(self):
        schedule = FaultSchedule((FaultEvent(time_ps=100, kind=FaultKind.LINK_FAIL, port=3),))
        service = _service(faults=FaultInjector(schedule))
        arrivals = [Arrival(time_ps=200, src=3, dst=5, hold_ps=us(1))]
        service.run_campaign(arrivals)
        assert service.requests[0].outcome is Outcome.REJECTED_DEAD
        assert service.slo.availability == 1.0  # dead rejects are excluded
        assert check_invariants(service) == []

    def test_submit_validates_inputs(self):
        service = _service()
        with pytest.raises(ConfigurationError):
            service.submit(0, 0, ns(100))
        with pytest.raises(ConfigurationError):
            service.submit(0, 99, ns(100))
        with pytest.raises(ConfigurationError):
            service.submit(0, 1, 0)


class TestPreload:
    def test_predicted_pairs_hit_resident_slots(self):
        cfg = ServiceConfig(k=4, k_preload=2, window_ps=us(10))
        params = SystemParams(n_ports=8)
        service = SwitchService(cfg, params, predicted=((0, 1), (2, 3)))
        assert service.fabric.preloaded_pairs
        arrivals = [Arrival(time_ps=100, src=0, dst=1, hold_ps=us(1))]
        service.run_campaign(arrivals)
        assert service.requests[0].outcome is Outcome.GRANTED
        assert service.resident_hits == 1  # served by the pinned preload
        assert check_invariants(service) == []

"""Unit tests for the admission-control primitives."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.admission import PortQueues, TokenBucket
from repro.service.model import PS_PER_S


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=3)
        assert [bucket.try_take(0) for _ in range(4)] == [True, True, True, False]
        assert bucket.taken == 3
        assert bucket.denied == 1

    def test_refills_exactly_at_rate(self):
        bucket = TokenBucket(rate_per_s=4.0, burst=8)
        for _ in range(8):
            assert bucket.try_take(0)
        # 4 tokens/s: one token every quarter virtual second
        assert not bucket.try_take(PS_PER_S // 4 - 1)
        assert bucket.tokens(PS_PER_S // 4) == 1
        assert bucket.try_take(PS_PER_S // 4)
        assert not bucket.try_take(PS_PER_S // 4)

    def test_refill_capped_at_burst(self):
        bucket = TokenBucket(rate_per_s=1_000_000.0, burst=5)
        assert bucket.tokens(10 * PS_PER_S) == 5

    def test_fractional_rate_is_exact(self):
        # 1.5 tokens/s: 3 tokens every 2 seconds, no float drift
        bucket = TokenBucket(rate_per_s=1.5, burst=100)
        bucket._tokens = 0
        assert bucket.tokens(2 * PS_PER_S) == 3
        assert bucket.tokens(4 * PS_PER_S) == 6

    def test_remainder_carries_across_refills(self):
        bucket = TokenBucket(rate_per_s=3.0, burst=100)
        bucket._tokens = 0
        # many tiny steps must gain exactly what one big step would
        step = PS_PER_S // 7
        for i in range(1, 8):
            bucket.tokens(i * step)
        assert bucket.tokens(PS_PER_S) == 3

    def test_rate_zero_is_unlimited(self):
        bucket = TokenBucket(rate_per_s=0.0, burst=1)
        assert not bucket.enabled
        assert all(bucket.try_take(0) for _ in range(100))
        assert bucket.denied == 0

    def test_set_rate_refills_at_old_rate_first(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=100)
        bucket._tokens = 0
        bucket.set_rate(PS_PER_S, 1.0)  # 10 tokens accrued before the change
        assert bucket.tokens(PS_PER_S) == 10
        assert bucket.tokens(2 * PS_PER_S) == 11

    @pytest.mark.parametrize("kwargs", [dict(rate_per_s=-1.0, burst=4), dict(rate_per_s=1.0, burst=0)])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TokenBucket(**kwargs)

    def test_set_rate_rejects_negative(self):
        bucket = TokenBucket(1.0, 1)
        with pytest.raises(ConfigurationError):
            bucket.set_rate(0, -2.0)


class TestPortQueues:
    def test_bounded_per_port(self):
        queues = PortQueues(n_ports=4, depth=2)
        assert queues.try_enqueue(1)
        assert queues.try_enqueue(1)
        assert not queues.try_enqueue(1)  # port 1 full
        assert queues.try_enqueue(2)  # other ports unaffected
        assert queues.refused == 1
        assert queues.total == 3

    def test_dequeue_frees_capacity(self):
        queues = PortQueues(n_ports=2, depth=1)
        assert queues.try_enqueue(0)
        assert not queues.try_enqueue(0)
        queues.dequeue(0)
        assert queues.try_enqueue(0)
        assert queues.depth_of(0) == 1

    def test_high_water_tracks_peak(self):
        queues = PortQueues(n_ports=2, depth=8)
        for _ in range(5):
            queues.try_enqueue(0)
        for _ in range(5):
            queues.dequeue(0)
        assert queues.high_water == 5
        assert queues.total == 0

    def test_underflow_raises(self):
        queues = PortQueues(n_ports=2, depth=1)
        with pytest.raises(ConfigurationError):
            queues.dequeue(0)

    def test_zero_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            PortQueues(n_ports=2, depth=0)

"""Daemon protocol tests: the synchronous dispatcher and the TCP loop."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.params import SystemParams
from repro.service.core import SwitchService
from repro.service.daemon import ServiceDaemon
from repro.service.model import ServiceConfig
from repro.sim.clock import us


def _daemon(**daemon_kwargs) -> ServiceDaemon:
    cfg = ServiceConfig(k=4, window_ps=us(100))
    service = SwitchService(cfg, SystemParams(n_ports=8))
    return ServiceDaemon(service, **daemon_kwargs)


def _drain(daemon: ServiceDaemon, virtual_ps: int) -> None:
    sim = daemon.service.sim
    sim.run(until=sim.now + virtual_ps)


class TestHandleLine:
    def test_request_then_poll_to_grant(self):
        daemon = _daemon()
        reply = daemon.handle_line('{"op":"request","src":0,"dst":5,"hold_ns":8000}')
        assert reply == {"ok": True, "req_id": 0, "outcome": "pending"}
        _drain(daemon, us(2))
        poll = daemon.handle_line('{"op":"poll","req_id":0}')
        assert poll["ok"] and poll["outcome"] == "granted"
        assert poll["latency_ps"] > 0
        assert poll["released"] is False

    def test_hold_ps_accepted_directly(self):
        daemon = _daemon()
        reply = daemon.handle_line('{"op":"request","src":1,"dst":2,"hold_ps":500000}')
        assert reply["ok"]
        assert daemon.service.requests[0].hold_ps == 500000

    def test_early_release(self):
        daemon = _daemon()
        daemon.handle_line('{"op":"request","src":0,"dst":5,"hold_ns":800000}')
        _drain(daemon, us(2))
        release = daemon.handle_line('{"op":"release","req_id":0}')
        assert release == {"ok": True, "req_id": 0, "released": True}
        # releasing a non-granted request is refused
        again = daemon.handle_line('{"op":"release","req_id":0}')
        assert again["ok"]  # idempotent once released: outcome is still granted
        daemon.handle_line('{"op":"request","src":2,"dst":3,"hold_ns":800}')
        refused = daemon.handle_line('{"op":"release","req_id":1}')
        assert not refused["ok"]
        assert "not granted" in refused["error"]

    def test_stats_reports_ledger(self):
        daemon = _daemon()
        daemon.handle_line('{"op":"request","src":0,"dst":5,"hold_ns":8000}')
        _drain(daemon, us(2))
        stats = daemon.handle_line('{"op":"stats"}')["stats"]
        assert stats["arrivals"] == 1
        assert stats["granted"] == 1
        assert "fabric" in stats

    @pytest.mark.parametrize(
        "line,fragment",
        [
            ("not json", "bad json"),
            ("[1,2,3]", "expected a json object"),
            ('{"op":"warp"}', "unknown op"),
            ('{"op":"poll","req_id":99}', "unknown req_id"),
            ('{"op":"request","src":0}', "bad request"),
            ('{"op":"request","src":0,"dst":0,"hold_ns":10}', ""),
        ],
    )
    def test_errors_are_replies_not_exceptions(self, line, fragment):
        reply = _daemon().handle_line(line)
        assert reply["ok"] is False
        assert fragment in reply["error"]

    def test_bad_pacing_config_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            _daemon(us_per_wall_s=0)
        with pytest.raises(ConfigurationError):
            _daemon(tick_s=0)


class TestTcpLoop:
    def test_request_grant_release_over_tcp(self):
        async def scenario():
            # fast pacing so the virtual clock covers the grant path quickly
            daemon = _daemon(port=0, us_per_wall_s=100_000.0, tick_s=0.005)
            await daemon.start()
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", daemon.port)

                async def rpc(obj):
                    writer.write((json.dumps(obj) + "\n").encode())
                    await writer.drain()
                    return json.loads(await reader.readline())

                sub = await rpc({"op": "request", "src": 0, "dst": 5, "hold_ns": 8000})
                assert sub["ok"] and sub["outcome"] == "pending"
                for _ in range(100):
                    await asyncio.sleep(0.01)
                    poll = await rpc({"op": "poll", "req_id": sub["req_id"]})
                    if poll["outcome"] == "granted":
                        break
                else:
                    raise AssertionError(f"never granted: {poll}")
                stats = await rpc({"op": "stats"})
                assert stats["stats"]["granted"] == 1
                writer.close()
                await writer.wait_closed()
            finally:
                await daemon.stop()

        asyncio.run(asyncio.wait_for(scenario(), timeout=30))

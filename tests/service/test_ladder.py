"""Unit tests for the overload/degradation ladder."""

from __future__ import annotations

from repro.service.ladder import OverloadLadder, ServiceLevel
from repro.service.model import ServiceConfig


def _ladder(**overrides) -> OverloadLadder:
    cfg = ServiceConfig(
        degrade_shed_rate=overrides.pop("degrade", 0.10),
        recover_shed_rate=overrides.pop("recover", 0.02),
        throttle_factor=overrides.pop("throttle", 0.5),
        **overrides,
    )
    return OverloadLadder(cfg)


class TestLadderSteps:
    def test_starts_normal(self):
        assert _ladder().level is ServiceLevel.NORMAL

    def test_one_rung_down_per_window(self):
        ladder = _ladder()
        assert ladder.evaluate(100, 0.5) is ServiceLevel.THROTTLED
        assert ladder.evaluate(200, 0.5) is ServiceLevel.DEGRADED
        assert ladder.evaluate(300, 0.5) is ServiceLevel.BEST_EFFORT
        # bottom rung: sustained pressure cannot step further
        assert ladder.evaluate(400, 0.9) is ServiceLevel.BEST_EFFORT

    def test_hysteresis_band_holds_level(self):
        ladder = _ladder()
        ladder.evaluate(100, 0.5)
        # between recover (0.02) and degrade (0.10): no movement either way
        assert ladder.evaluate(200, 0.05) is ServiceLevel.THROTTLED
        assert ladder.evaluate(300, 0.05) is ServiceLevel.THROTTLED

    def test_recovers_one_rung_per_window(self):
        ladder = _ladder()
        for t in (1, 2, 3):
            ladder.evaluate(t, 0.5)
        assert ladder.level is ServiceLevel.BEST_EFFORT
        assert ladder.evaluate(4, 0.0) is ServiceLevel.DEGRADED
        assert ladder.evaluate(5, 0.0) is ServiceLevel.THROTTLED
        assert ladder.evaluate(6, 0.0) is ServiceLevel.NORMAL
        assert ladder.evaluate(7, 0.0) is ServiceLevel.NORMAL

    def test_transitions_are_recorded_with_reasons(self):
        ladder = _ladder()
        ladder.evaluate(100, 0.5)
        ladder.evaluate(200, 0.0)
        assert [(t, old.name, new.name) for t, old, new, _ in ladder.transitions] == [
            (100, "NORMAL", "THROTTLED"),
            (200, "THROTTLED", "NORMAL"),
        ]
        assert all(reason for _, _, _, reason in ladder.transitions)


class TestPinnedLoss:
    def test_forces_degraded_once(self):
        ladder = _ladder()
        assert ladder.note_pinned_lost(50) is True  # first loss: do the fallback
        assert ladder.level is ServiceLevel.DEGRADED
        assert ladder.note_pinned_lost(60) is False  # fallback already done
        assert ladder.preload_degraded

    def test_rung_recovers_but_fallback_is_permanent(self):
        ladder = _ladder()
        ladder.note_pinned_lost(50)
        ladder.evaluate(100, 0.0)
        ladder.evaluate(200, 0.0)
        assert ladder.level is ServiceLevel.NORMAL
        assert ladder.preload_degraded  # one-way

    def test_loss_at_best_effort_does_not_improve_level(self):
        ladder = _ladder()
        for t in (1, 2, 3):
            ladder.evaluate(t, 0.5)
        ladder.note_pinned_lost(4)
        assert ladder.level is ServiceLevel.BEST_EFFORT


class TestBucketRate:
    def test_geometric_throttle_per_rung(self):
        ladder = _ladder()
        assert ladder.bucket_rate(1000.0) == 1000.0
        ladder.evaluate(1, 0.5)
        assert ladder.bucket_rate(1000.0) == 500.0
        ladder.evaluate(2, 0.5)
        assert ladder.bucket_rate(1000.0) == 250.0

    def test_unlimited_bucket_stays_unlimited(self):
        ladder = _ladder()
        ladder.evaluate(1, 0.5)
        assert ladder.bucket_rate(0.0) == 0.0

"""Unit tests for SLO accounting: percentiles, windows, serialisation."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.service.model import Outcome
from repro.service.slo import SloRecorder, percentile_ps


class TestPercentile:
    def test_empty_is_sentinel(self):
        assert percentile_ps([], 99) == -1

    def test_nearest_rank_exact(self):
        values = list(range(1, 101))  # 1..100
        assert percentile_ps(values, 50) == 50
        assert percentile_ps(values, 99) == 99
        assert percentile_ps(values, 100) == 100
        assert percentile_ps(values, 1) == 1

    def test_single_value(self):
        assert percentile_ps([7], 50) == 7
        assert percentile_ps([7], 99) == 7

    def test_small_sets_round_up(self):
        assert percentile_ps([10, 20], 50) == 10
        assert percentile_ps([10, 20], 51) == 20
        assert percentile_ps([10, 20, 30], 99) == 30

    @pytest.mark.parametrize("q", [0, -1, 101])
    def test_out_of_range_rejected(self, q):
        with pytest.raises(ConfigurationError):
            percentile_ps([1], q)

    def test_fractional_q_rank_is_exact(self):
        # regression: the rank was computed as ceil(len * q / 100) with a
        # float product — 375 * 8.8 == 3300.0000000000005, so the rank
        # came out 34 instead of the exact ceil(33) == 33
        values = list(range(375))
        assert percentile_ps(values, 8.8) == values[33 - 1]

    def test_fractional_q_rank_is_exact_other_boundary(self):
        values = list(range(250))
        # 250 * 64.4 == 16100 exactly -> rank 161
        assert percentile_ps(values, 64.4) == values[161 - 1]

    def test_p50_boundary_even_and_odd(self):
        assert percentile_ps([1, 2, 3, 4], 50) == 2  # rank ceil(2) == 2
        assert percentile_ps([1, 2, 3, 4, 5], 50) == 3  # rank ceil(2.5) == 3

    def test_p99_boundary(self):
        values = list(range(1, 101))
        assert percentile_ps(values, 99) == 99  # rank exactly 99
        assert percentile_ps(list(range(1, 102)), 99) == 100  # ceil(99.99)

    def test_fractional_q_string_semantics(self):
        # 99.9 means 999/10 exactly, not the nearest binary float
        values = list(range(1, 1001))
        assert percentile_ps(values, 99.9) == 999

    def test_nan_q_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile_ps([1], float("nan"))


class TestRecorder:
    def test_window_and_cumulative_split(self):
        slo = SloRecorder(window_ps=1000)
        slo.note_arrival()
        slo.note_grant(100)
        slo.note_arrival()
        slo.note_shed(Outcome.SHED_QUEUE_FULL)
        snap = slo.close_window(1000, "NORMAL", queued=0, fabric={})
        assert (snap.arrivals, snap.granted, snap.shed) == (2, 1, 1)
        assert snap.availability == 0.5
        # window state reset, cumulative survives
        slo.note_arrival()
        slo.note_grant(200)
        snap2 = slo.close_window(2000, "NORMAL", queued=0, fabric={})
        assert (snap2.arrivals, snap2.granted, snap2.shed) == (1, 1, 0)
        assert snap2.cum_granted == 2
        assert slo.availability == 2 / 3

    def test_pressure_excludes_throttle_sheds(self):
        slo = SloRecorder(window_ps=1000)
        for _ in range(8):
            slo.note_grant(10)
        slo.note_shed(Outcome.SHED_THROTTLE)
        slo.note_shed(Outcome.SHED_THROTTLE)
        assert slo.window_shed_rate == 0.2
        assert slo.window_pressure_rate == 0.0  # throttle is the bucket working
        slo.note_shed(Outcome.SHED_TIMEOUT)
        assert slo.window_pressure_rate == pytest.approx(1 / 9)

    def test_rejects_do_not_count_against_availability(self):
        slo = SloRecorder(window_ps=1000)
        slo.note_grant(10)
        for _ in range(5):
            slo.note_reject_dead()
        assert slo.availability == 1.0
        assert slo.rejected_dead == 5

    def test_non_shed_outcome_rejected(self):
        slo = SloRecorder(window_ps=1000)
        with pytest.raises(ConfigurationError):
            slo.note_shed(Outcome.GRANTED)

    def test_empty_window_defaults(self):
        slo = SloRecorder(window_ps=1000)
        assert not slo.window_dirty
        snap = slo.close_window(1000, "NORMAL", queued=0, fabric={})
        assert snap.availability == 1.0
        assert snap.shed_rate == 0.0
        assert snap.p99_grant_ps == -1

    def test_jsonl_keys_are_ordered_and_stable(self):
        slo = SloRecorder(window_ps=1000)
        slo.note_arrival()
        slo.note_grant(100)
        slo.close_window(1000, "NORMAL", queued=2, fabric={"b": 1, "a": 2})
        line = slo.to_jsonl().strip()
        obj = json.loads(line)
        assert list(obj)[:3] == ["t_ps", "window_ps", "level"]
        assert list(obj["fabric"]) == ["a", "b"]  # sorted for byte stability
        # identical recorder state serialises byte-identically
        assert slo.to_jsonl() == slo.to_jsonl()

    def test_write_jsonl_roundtrip(self, tmp_path):
        slo = SloRecorder(window_ps=1000)
        slo.note_grant(1)
        slo.close_window(1000, "NORMAL", queued=0, fabric={})
        slo.note_grant(2)
        slo.close_window(2000, "THROTTLED", queued=1, fabric={})
        path = tmp_path / "slo.jsonl"
        assert slo.write_jsonl(path) == 2
        lines = path.read_text().splitlines()
        assert [json.loads(ln)["level"] for ln in lines] == ["NORMAL", "THROTTLED"]

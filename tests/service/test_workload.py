"""Unit tests for the seeded workload generators."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.workload import Arrival, WorkloadSpec, predicted_pairs
from repro.sim.clock import us


def _spec(**overrides) -> WorkloadSpec:
    base = dict(
        kind="poisson",
        n_ports=8,
        rate_per_s=2_000_000.0,
        mean_hold_ps=us(5),
        duration_ps=us(200),
    )
    base.update(overrides)
    return WorkloadSpec(**base)


class TestGeneration:
    def test_deterministic_for_fixed_seed(self):
        spec = _spec()
        assert spec.generate(7) == spec.generate(7)
        assert spec.generate(7) != spec.generate(8)

    def test_arrivals_sorted_and_inside_horizon(self):
        arrivals = _spec().generate(3)
        assert arrivals
        times = [a.time_ps for a in arrivals]
        assert times == sorted(times)
        assert all(0 <= t < us(200) for t in times)
        assert all(a.hold_ps >= 1 for a in arrivals)
        assert all(a.src != a.dst for a in arrivals)

    def test_rate_roughly_honoured(self):
        arrivals = _spec(duration_ps=us(1000)).generate(11)
        # 2e6/s over 1000 us => ~2000 expected; allow wide stochastic slack
        assert 1500 < len(arrivals) < 2500

    def test_bursty_off_period_is_silent(self):
        spec = _spec(kind="bursty", on_ps=us(10), off_ps=us(10))
        arrivals = spec.generate(5)
        period = us(20)
        assert arrivals
        assert all((a.time_ps % period) < us(10) for a in arrivals)

    def test_hotspot_concentrates_on_hot_ports(self):
        spec = _spec(kind="hotspot", hotspot_fraction=0.8, n_hot=2, duration_ps=us(1000))
        arrivals = spec.generate(9)
        hot = sum(1 for a in arrivals if a.dst < 2)
        # 0.8 targeted + ~2/8 of the uniform remainder land hot anyway
        assert hot / len(arrivals) > 0.7

    def test_overload_burst_raises_local_density(self):
        horizon = us(1000)
        spec = _spec(
            duration_ps=horizon,
            overload=((horizon // 4, horizon // 2, 4.0),),
        )
        arrivals = spec.generate(13)
        inside = sum(1 for a in arrivals if horizon // 4 <= a.time_ps < horizon // 2)
        outside = len(arrivals) - inside
        # the burst quarter carries 4x the density of the other three quarters
        assert inside > outside

    def test_hot_pairs_only_for_hotspot(self):
        assert _spec().hot_pairs(4) == ()
        spec = _spec(kind="hotspot", n_hot=1)
        pairs = spec.hot_pairs(3)
        assert len(pairs) == 3
        assert all(dst == 0 and src != 0 for src, dst in pairs)


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            dict(kind="nope"),
            dict(n_ports=1),
            dict(rate_per_s=0.0),
            dict(mean_hold_ps=0),
            dict(duration_ps=0),
            dict(kind="bursty", on_ps=0),
            dict(kind="hotspot", hotspot_fraction=1.5),
            dict(kind="hotspot", n_hot=8),
            dict(overload=((10, 5, 2.0),)),
            dict(overload=((0, 10, 0.0),)),
        ],
    )
    def test_bad_specs_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            _spec(**overrides)


class TestPredictedPairs:
    def test_ranked_by_frequency_then_pair(self):
        arrivals = [
            Arrival(0, 1, 2, 10),
            Arrival(1, 1, 2, 10),
            Arrival(2, 3, 4, 10),
            Arrival(3, 0, 5, 10),
            Arrival(4, 3, 4, 10),
            Arrival(5, 3, 4, 10),
        ]
        assert predicted_pairs(arrivals, 2) == ((3, 4), (1, 2))
        # tie between (1,2)x2 — (0,5) loses with count 1; ties break on pair
        assert predicted_pairs(arrivals, 3) == ((3, 4), (1, 2), (0, 5))

    def test_zero_count_and_empty(self):
        assert predicted_pairs([], 4) == ()
        assert predicted_pairs([Arrival(0, 1, 2, 10)], 0) == ()

"""Unit tests for the service value objects and configuration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.model import Outcome, ServiceConfig, ServiceRequest


class TestOutcome:
    def test_shed_partition(self):
        sheds = {o for o in Outcome if o.is_shed}
        assert sheds == {
            Outcome.SHED_THROTTLE,
            Outcome.SHED_QUEUE_FULL,
            Outcome.SHED_TIMEOUT,
            Outcome.SHED_BEST_EFFORT,
        }
        assert not Outcome.GRANTED.is_shed
        assert not Outcome.REJECTED_DEAD.is_shed  # excluded from availability
        assert not Outcome.PENDING.is_shed


class TestServiceRequest:
    def test_latency_from_grant(self):
        req = ServiceRequest(req_id=0, src=1, dst=2, arrive_ps=100, hold_ps=50)
        assert req.pair == (1, 2)
        req.grant_ps = 340
        assert req.latency_ps == 240


class TestServiceConfig:
    def test_defaults_valid(self):
        cfg = ServiceConfig()
        assert cfg.scheme == "hybrid"
        assert cfg.bucket_rate_per_s == 0.0  # unlimited by default

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(k=0),
            dict(k=4, k_preload=5),
            dict(k_preload=-1),
            dict(bucket_rate_per_s=-1.0),
            dict(bucket_burst=0),
            dict(queue_depth=0),
            dict(window_ps=0),
            dict(availability_floor=1.5),
            dict(degrade_shed_rate=0.05, recover_shed_rate=0.10),
            dict(degrade_shed_rate=1.5),
            dict(throttle_factor=0.0),
            dict(throttle_factor=1.5),
        ],
    )
    def test_bad_configs_rejected_eagerly(self, overrides):
        with pytest.raises(ConfigurationError):
            ServiceConfig(**overrides)

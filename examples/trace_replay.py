#!/usr/bin/env python
"""Record, replay, and archive workloads — the adopter workflow.

The paper drives its simulation from per-processor command files.  This
example shows the library's equivalent round trip:

1. generate a workload (a NAS-like multi-phase trace),
2. save it as a portable trace file (`# phase ...` / `src dst size` lines),
3. replay the file through two switching schemes,
4. archive each run as JSON and re-load it for analysis without
   re-simulating.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import PAPER_PARAMS, RunSpec, build_network
from repro.metrics.efficiency import efficiency
from repro.metrics.latencies import summarize_latencies
from repro.metrics.serialization import load_result, save_result
from repro.sim.rng import RngStreams
from repro.traffic.nas import NasLikeTrace
from repro.traffic.tracefile import TraceFilePattern, save_trace

N = 16


def main() -> None:
    params = PAPER_PARAMS.with_overrides(n_ports=N)
    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))

    # 1. generate and 2. save
    trace = NasLikeTrace(N, size_bytes=128, n_phases=4, rounds_per_phase=2)
    phases = trace.phases(RngStreams(123))
    trace_path = workdir / "program.trace"
    save_trace(phases, trace_path)
    n_msgs = sum(len(p.messages) for p in phases)
    print(f"saved {n_msgs} messages in {len(phases)} phases -> {trace_path}")

    # 3. replay through two schemes (identical workload by construction)
    for label, spec in (
        ("tdm-dynamic", RunSpec("dynamic-tdm", params, k=4, injection_window=None)),
        ("wormhole", RunSpec("wormhole", params)),
    ):
        replay = TraceFilePattern(N, trace_path).phases(RngStreams(0))
        result = build_network(spec).run(replay, pattern_name="replayed-trace")
        eff = efficiency(result, replay)
        out = workdir / f"{label}.json"
        save_result(result, out)  # 4. archive
        print(
            f"{label:12s} makespan={result.makespan_ps / 1e6:7.2f} us "
            f"efficiency={eff:.3f}  -> {out.name}"
        )

    # ... later, analyse without re-running
    reloaded = load_result(workdir / "tdm-dynamic.json")
    print(
        f"\nreloaded {reloaded.scheme}: {len(reloaded.records)} records, "
        f"latency {summarize_latencies(reloaded)}"
    )


if __name__ == "__main__":
    main()

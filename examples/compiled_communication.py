#!/usr/bin/env python
"""Compiled communication on a NAS-like multi-phase program.

The scenario from Sections 3.1/3.3 of the paper: a scientific program
alternates stencil exchanges, global transposes, reductions, and a little
unpredictable traffic.  A compiler that knows each phase's communication
pattern can

1. compute the phase's *optimal multiplexing degree* (the maximum port
   degree of its connection set — König's theorem),
2. compile the connection set into that many crossbar configurations
   (bipartite edge colouring), and
3. preload them, so the network never pays run-time scheduling for the
   statically-known traffic.

This example compiles every phase of a synthetic NAS-like trace, prints
the per-phase analysis, then runs the whole program under dynamic
scheduling and under hybrid preload+dynamic and compares makespans.

Run:  python examples/compiled_communication.py
"""

from repro import PAPER_PARAMS, RunSpec, build_network
from repro.compiled.patterns import StaticPattern
from repro.compiled.phases import working_set_series
from repro.metrics.efficiency import efficiency
from repro.sim.rng import RngStreams
from repro.traffic.nas import NasLikeTrace


def main() -> None:
    params = PAPER_PARAMS.with_overrides(n_ports=32)
    trace = NasLikeTrace(
        params.n_ports, size_bytes=128, n_phases=6, rounds_per_phase=2
    )

    print("=== compile-time analysis ===")
    phases = trace.phases(RngStreams(42))
    for phase in phases:
        pattern = StaticPattern(params.n_ports, phase.static_conns)
        configs = pattern.compile()
        print(
            f"{phase.name:22s} |C|={len(pattern):4d}  optimal k={pattern.degree:3d}"
            f"  -> {len(configs)} configurations"
            f"  ({len(phase.messages)} messages)"
        )

    # the sliding working-set over the whole program (Section 2's W(j))
    conn_trace = [(m.src, m.dst) for p in phases for m in p.messages]
    series = working_set_series(conn_trace, window=64)
    print(
        f"\nworking set over a 64-message window: "
        f"min={min(series)}, max={max(series)} connections"
    )

    print("\n=== execution comparison ===")

    def compiler_pass(phases, k_preload: int, max_batches: int = 1):
        """The compiler's preload decision per phase.

        A working set is only worth preloading if it (nearly) fits the
        pinned registers — cycling many batches through them serialises
        traffic that dynamic scheduling would overlap.  Phases whose
        compiled program would exceed ``max_batches`` are left entirely to
        the dynamic scheduler (their static info is erased).
        """
        for phase in phases:
            degree = StaticPattern(params.n_ports, phase.static_conns).degree
            if degree > k_preload * max_batches:
                phase.static_conns = set()
                phase.preload_configs = None
        return phases

    for label, spec, compile_filter in (
        (
            "dynamic TDM (K=6)",
            RunSpec("dynamic-tdm", params, k=6, injection_window=4),
            False,
        ),
        (
            "hybrid 4-preload/2-dynamic",
            RunSpec(
                "hybrid",
                params,
                k=6,
                k_preload=4,
                injection_window=4,
                # Section 3.3's compiler flush
                options={"flush_on_phase": True},
            ),
            True,
        ),
    ):
        fresh = trace.phases(RngStreams(42))  # identical workload
        if compile_filter:
            fresh = compiler_pass(fresh, k_preload=4)
        result = build_network(spec).run(fresh, pattern_name=trace.name)
        eff = efficiency(result, fresh)
        print(
            f"{label:28s} makespan={result.makespan_ps / 1e6:8.1f} us"
            f"  efficiency={eff:.3f}"
            f"  establishments={result.counters.get('establishes', 0)}"
        )

    print(
        "\nThe hybrid run preloads the stencil phases (their working set fits"
        "\nthe 4 pinned registers exactly) and leaves transposes, reductions"
        "\nand broadcasts to the dynamic scheduler — those are bottlenecked by"
        "\na single port, so no preload schedule could speed them up."
    )


if __name__ == "__main__":
    main()

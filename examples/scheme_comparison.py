#!/usr/bin/env python
"""Head-to-head comparison of the four switching schemes (mini Figure 4).

Runs one traffic pattern across wormhole routing, circuit switching,
dynamic TDM, and preloaded TDM at several message sizes, printing an
efficiency table like one panel of the paper's Figure 4.

Run:  python examples/scheme_comparison.py [pattern]
      pattern in {scatter, random-mesh, ordered-mesh, two-phase}
"""

import sys

from repro import PAPER_PARAMS
from repro.experiments.common import figure4_schemes, measure
from repro.experiments.figure4 import figure4_patterns
from repro.metrics.report import format_series


def main(pattern_name: str = "random-mesh") -> None:
    params = PAPER_PARAMS.with_overrides(n_ports=32)
    sizes = (16, 64, 256, 1024)

    patterns = figure4_patterns(params, mesh_rounds=2, nn_rounds=4)
    if pattern_name not in patterns:
        raise SystemExit(f"unknown pattern {pattern_name!r}; pick from {list(patterns)}")
    schemes = figure4_schemes(params)

    series: dict[str, list[float]] = {}
    for scheme_name, factory in schemes.items():
        series[scheme_name] = [
            measure(patterns[pattern_name](size), factory()).efficiency
            for size in sizes
        ]

    print(
        format_series(
            "bytes",
            list(sizes),
            series,
            title=f"Bandwidth efficiency — {pattern_name} on {params.n_ports} ports",
        )
    )
    best_at_64 = max(series, key=lambda s: series[s][sizes.index(64)])
    print(f"best scheme at 64 bytes: {best_at_64}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "random-mesh")

#!/usr/bin/env python
"""Quickstart: simulate predictive multiplexed switching in ~20 lines.

Builds a 32-processor system with the paper's timing constants, runs a
scatter workload through the TDM switch (dynamic scheduling, multiplexing
degree 4), and prints efficiency and latency statistics.

Run:  python examples/quickstart.py
"""

from repro import PAPER_PARAMS, RunSpec, ScatterPattern, build_network, measure
from repro.metrics.latencies import summarize_latencies
from repro.networks.base import RunResult
from repro.sim.rng import RngStreams


def main() -> None:
    # A smaller sibling of the paper's 128-processor system: same link
    # rate, NIC, scheduler, and slot timing, just 32 ports.
    params = PAPER_PARAMS.with_overrides(n_ports=32)

    # One processor scatters a 256-byte message to every other processor.
    pattern = ScatterPattern(params.n_ports, size_bytes=256)

    # The paper's switch: TDM crossbar, K=4 configuration registers,
    # connections established dynamically by the SL-array scheduler.
    spec = RunSpec(scheme="dynamic-tdm", params=params, k=4, injection_window=4)
    network = build_network(spec)

    point = measure(pattern, network)
    print(f"pattern        : {point.pattern} ({point.total_bytes} bytes)")
    print(f"scheme         : {point.scheme} (K=4)")
    print(f"makespan       : {point.makespan_ps / 1000:.1f} ns")
    print(f"lower bound    : {point.lower_bound_ps / 1000:.1f} ns")
    print(f"efficiency     : {point.efficiency:.3f}")
    print(f"establishments : {point.counters['establishes']}")

    # For latency statistics, run again keeping the delivery records.
    phases = pattern.phases(RngStreams(0))
    result: RunResult = build_network(spec).run(phases, pattern_name=pattern.name)
    print(f"latency        : {summarize_latencies(result)}")


if __name__ == "__main__":
    main()

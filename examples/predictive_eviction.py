#!/usr/bin/env python
"""Predictive eviction: caching connections across traffic bursts.

Section 3.2 of the paper: instead of predicting which connection to *add*,
the predictor decides when to *remove* one from the cached working set.
This example sends bursty nearest-neighbour-style traffic — each node
talks to the same partner in bursts separated by computation gaps — and
compares three eviction policies:

* none        — the connection is released the moment its queue drains
                (and re-established 240+ ns later for the next burst);
* time-out    — the paper's experimental predictor: keep the connection
                latched until it has been idle for a fixed period;
* counter     — evict only after other connections have been used some
                number of times (immune to pure computation gaps).

Run:  python examples/predictive_eviction.py
"""

from repro import PAPER_PARAMS, RunSpec, build_network
from repro.metrics.latencies import summarize_latencies
from repro.predict.counter import CounterPredictor
from repro.predict.timeout import TimeoutPredictor
from repro.sim.clock import us
from repro.traffic.base import TrafficPhase, assign_seq
from repro.types import Message


def bursty_phase(n: int, bursts: int, burst_len: int, gap_ps: int) -> TrafficPhase:
    """Every node sends bursts of messages to its ring partner."""
    msgs = []
    for b in range(bursts):
        for i in range(burst_len):
            t = b * gap_ps
            for u in range(n):
                msgs.append(
                    Message(src=u, dst=(u + 1) % n, size=64, inject_ps=t + i)
                )
    phase = TrafficPhase("bursty-ring", msgs)
    assign_seq([phase])
    return phase


def main() -> None:
    params = PAPER_PARAMS.with_overrides(n_ports=32)
    n = params.n_ports
    gap = us(3)  # a 3 microsecond computation gap between bursts

    policies = {
        "none (plain dynamic)": None,
        "time-out 5 us": TimeoutPredictor(us(5)),
        "counter (512 uses)": CounterPredictor(512),
    }

    print(f"{'policy':24s} {'mean latency':>12s} {'p99':>9s} "
          f"{'establishes':>11s} {'evictions':>9s}")
    for label, predictor in policies.items():
        phase = bursty_phase(n, bursts=6, burst_len=4, gap_ps=gap)
        net = build_network(
            RunSpec(
                scheme="dynamic-tdm",
                params=params,
                k=2,
                injection_window=None,
                options={"predictor": predictor},
            )
        )
        result = net.run([phase], pattern_name="bursty-ring")
        lat = summarize_latencies(result)
        print(
            f"{label:24s} {lat.mean_ns:9.0f} ns {lat.p99_ns:6.0f} ns "
            f"{result.counters.get('establishes', 0):11d} "
            f"{result.counters.get('predictor_evictions', 0):9d}"
        )

    print(
        "\nWith an eviction predictor the ring connections survive the "
        "computation gaps,\nso only the first burst pays establishment — "
        "the paper's cache-compulsory-miss analogy."
    )


if __name__ == "__main__":
    main()

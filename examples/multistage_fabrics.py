#!/usr/bin/env python
"""Beyond the crossbar: multistage fabric constraints.

Section 4 of the paper notes that non-crossbar fabrics impose richer
constraints on what a single configuration may contain, and the
conclusion lists extending the design to such fabrics as ongoing work.
This example explores both canonical cases on 16 ports:

* an **Omega** network — blocking: we count how many random permutations
  it can realise in one pass and how many passes a greedy partition needs
  (the multistage analogue of raising the multiplexing degree);
* a **Benes** network — rearrangeably non-blocking: the looping algorithm
  routes *any* permutation, and we verify the computed 2x2 switch
  settings by tracing every input.

Run:  python examples/multistage_fabrics.py
"""

import numpy as np

from repro.fabric.config import ConfigMatrix
from repro.fabric.fattree import FatTree
from repro.fabric.multistage import BenesNetwork, OmegaNetwork


def main() -> None:
    n = 16
    rng = np.random.default_rng(7)

    # -- Omega: how blocking is it? -----------------------------------------
    omega = OmegaNetwork(n)
    trials = 500
    realizable = 0
    passes_needed = []
    for _ in range(trials):
        perm = [int(x) for x in rng.permutation(n)]
        cfg = ConfigMatrix.from_permutation(perm)
        if omega.is_realizable(cfg):
            realizable += 1
        passes_needed.append(len(omega.partition(cfg)))
    print(f"Omega network, {n} ports, {trials} random permutations:")
    print(f"  realizable in one pass : {realizable / trials:7.1%}")
    print(f"  mean greedy passes     : {np.mean(passes_needed):7.2f}")
    print(f"  worst case             : {max(passes_needed)} passes")

    # the identity permutation always routes
    identity = ConfigMatrix.from_permutation(list(range(n)))
    assert omega.is_realizable(identity)
    print("  identity permutation   : conflict-free (as expected)")

    # -- Benes: rearrangeably non-blocking ------------------------------------
    benes = BenesNetwork(n)
    print(f"\nBenes network, {n} ports ({benes.n_stages} switch stages):")
    ok = 0
    for _ in range(trials):
        perm = [int(x) for x in rng.permutation(n)]
        stages = benes.route_permutation(perm)
        if benes.verify(perm, stages):
            ok += 1
    print(f"  looping algorithm routed and verified {ok}/{trials} permutations")

    # show one routing in detail
    perm = [int(x) for x in rng.permutation(n)]
    stages = benes.route_permutation(perm)
    crossed = sum(sum(stage) for stage in stages)
    total = sum(len(stage) for stage in stages)
    print(f"  example permutation    : {perm}")
    print(f"  crossed switches       : {crossed}/{total}")
    # -- fat tree: capacity, not permutation, is the constraint ---------------
    print(f"\nFat trees, {n} leaves, random permutations:")
    for taper in (1, 2, 4):
        ft = FatTree(n, taper=taper)
        passes = [
            len(ft.partition(ConfigMatrix.from_permutation(
                [int(x) for x in rng.permutation(n)])))
            for _ in range(trials)
        ]
        print(
            f"  taper {taper}:1 -> mean {np.mean(passes):5.2f} passes,"
            f" worst {max(passes)}"
        )

    print(
        "\nImplication for TDM: on a Benes fabric every configuration that is"
        "\na partial permutation remains realisable, so the paper's scheduler"
        "\ncarries over; on an Omega fabric the pre-scheduling logic must also"
        "\ncheck link-disjointness, and on a tapered fat tree it must respect"
        "\nper-level edge capacities — both ship as fabric-constraint objects"
        "\nthat plug straight into repro.sched.ConstrainedScheduler."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The compiled-communication frontend on a structured program.

Sections 3.1 and 3.3 of the paper assume a compiler that can identify the
communication working set of each program region and emit preload/flush
directives.  `repro.compiled.frontend` is that compiler for a small
structured IR.  This example writes the paper-style program

    for 4 iterations:           # time-stepped stencil solve
        stencil halo exchange
    gather to node 0            # residual reduction
    scatter from node 0         # broadcast of the new parameters
    for 4 iterations:
        shift(+1); shift(+2)    # pipelined exchange with two partners
        <data-dependent sends>  # the part no compiler can analyse

then shows the compiler's per-phase analysis (working set, optimal
multiplexing degree, preload batches, flush points) and runs the compiled
schedule on the TDM network in hybrid mode.

Run:  python examples/compiler_frontend.py
"""

from repro import PAPER_PARAMS, build_network
from repro.compiled.frontend import (
    Gather,
    Loop,
    Scatter,
    Seq,
    Shift,
    Stencil,
    Unknown,
    compile_program,
)
from repro.metrics.efficiency import efficiency

N = 32


def build_program():
    irregular = Unknown(pairs=tuple((u, (u * 7 + 3) % N) for u in range(0, N, 4)))
    return Seq(
        body=(
            Loop(trips=4, body=(Stencil(),)),
            Gather(root=0),
            Scatter(root=0),
            Loop(trips=4, body=(Shift(1), Shift(2), irregular)),
        )
    )


def main() -> None:
    params = PAPER_PARAMS.with_overrides(n_ports=N)
    program = build_program()

    schedule = compile_program(program, N, k_preload=2, max_batches=2)

    print("=== compiler output ===")
    for i, phase in enumerate(schedule.phases):
        flush = "flush; " if phase.flush_on_entry else ""
        preload = (
            f"preload {sum(len(b) for b in phase.program.batches)} configs"
            if phase.program
            else "fully dynamic"
        )
        print(
            f"{i}: {flush}{phase.name:14s} x{phase.trips:<3d}"
            f" |W|={phase.working_set_size:4d}  k_opt={phase.optimal_degree:3d}"
            f"  static={len(phase.static_conns):4d}"
            f"  dynamic={len(phase.dynamic_conns):3d}  ({preload})"
        )
    print(f"flush points: {schedule.flush_points}")

    print("\n=== execution ===")
    phases = schedule.to_traffic(size_bytes=128)
    # the schedule knows its own scheme: hybrid (it preloads 2 registers)
    # with flush_on_phase honouring the compiler's flush directives
    net = build_network(schedule.run_spec(params, 4, injection_window=4))
    result = net.run(phases, pattern_name="compiled-program")
    print(f"messages    : {len(result.records)}")
    print(f"makespan    : {result.makespan_ps / 1e6:.1f} us")
    print(f"efficiency  : {efficiency(result, phases):.3f}")
    print(f"establishes : {result.counters.get('establishes', 0)} "
          f"(stencil & shift phases ride the preloaded registers)")


if __name__ == "__main__":
    main()
